(* Pure math builtins shared by every expression environment. *)

exception Unknown_function of string

let math_call name args =
  let num = function
    | Netlist.Expr.Num v -> v
    | Netlist.Expr.Name n ->
        raise (Netlist.Expr.Eval_error (Printf.sprintf "%s: unexpected name argument %s" name n))
  in
  match (name, args) with
  | "min", [ a; b ] -> Float.min (num a) (num b)
  | "max", [ a; b ] -> Float.max (num a) (num b)
  | "abs", [ a ] -> Float.abs (num a)
  | "sqrt", [ a ] -> Float.sqrt (num a)
  | "log10", [ a ] -> Float.log10 (num a)
  | "ln", [ a ] -> Float.log (num a)
  | "exp", [ a ] -> Float.exp (num a)
  | "db", [ a ] -> 20.0 *. Float.log10 (Float.abs (num a) +. 1e-300)
  | _ -> raise (Unknown_function name)
