let corner name kp vto beta =
  {
    Devices.Registry.corner_name = name;
    kp_scale = kp;
    vto_shift = vto;
    beta_scale = beta;
  }

let standard =
  [
    Devices.Registry.nominal_corner;
    corner "slow" 0.85 0.08 0.8;
    corner "fast" 1.15 (-0.08) 1.2;
    corner "slow-n-fast-p" 0.92 0.05 0.9;
    corner "fast-n-slow-p" 1.08 (-0.05) 1.1;
  ]

type spec_at_corner = {
  sc_corner : string;
  sc_values : (string * (float, string) result) list;
}

let apply_sizing (st : State.t) sizing =
  Array.iteri
    (fun i info ->
      match info with
      | State.User { name; _ } -> begin
          match List.assoc_opt name sizing with
          | Some v -> State.set_initial st i v
          | None -> ()
        end
      | State.Node_voltage _ -> ())
    st.State.info

let analyze ?(corners = standard) ~source ~sizing () =
  let rec run acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> begin
        match Compile.compile_source ~corner:c source with
        | Error e -> Error (c.Devices.Registry.corner_name ^ ": " ^ e)
        | Ok p -> begin
            let st = State.snapshot p.Problem.state0 in
            apply_sizing st sizing;
            match Verify.simulate_specs p st with
            | Error e ->
                (* A corner where the design does not even bias up is a
                   result, not an analysis failure. *)
                run
                  ({
                     sc_corner = c.Devices.Registry.corner_name;
                     sc_values =
                       List.map
                         (fun (s : Problem.spec) -> (s.Problem.spec_name, Error e))
                         p.Problem.specs;
                   }
                  :: acc)
                  rest
            | Ok values ->
                run
                  ({ sc_corner = c.Devices.Registry.corner_name; sc_values = values } :: acc)
                  rest
          end
      end
  in
  run [] corners

let worst_case (p : Problem.t) results =
  List.map
    (fun (s : Problem.spec) ->
      let name = s.Problem.spec_name in
      let fold acc r =
        match (acc, r) with
        | Error e, _ -> Error e
        | Ok _, Error e -> Error e
        | Ok a, Ok v -> begin
            (* pessimistic direction per goal kind *)
            match s.kind with
            | Netlist.Ast.Constraint_ge | Netlist.Ast.Objective_max -> Ok (Float.min a v)
            | Netlist.Ast.Constraint_le | Netlist.Ast.Objective_min -> Ok (Float.max a v)
          end
      in
      let per_corner = List.map (fun sc -> List.assoc name sc.sc_values) results in
      match per_corner with
      | [] -> (name, Error "no corners")
      | first :: rest -> (name, List.fold_left fold first rest))
    p.Problem.specs
