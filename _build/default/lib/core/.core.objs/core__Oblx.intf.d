lib/core/oblx.mli: Problem State
