lib/core/sensitivity.mli: Format Problem State
