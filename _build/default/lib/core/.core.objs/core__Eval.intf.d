lib/core/eval.mli: Awe Mna Netlist Problem State Weights
