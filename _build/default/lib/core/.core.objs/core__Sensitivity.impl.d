lib/core/sensitivity.ml: Array Eval Float Format List Moves Problem State
