lib/core/report.mli: Format Problem State
