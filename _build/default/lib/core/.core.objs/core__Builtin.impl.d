lib/core/builtin.ml: Float Netlist Printf
