lib/core/moves.ml: Anneal Array Devices Eval Float Int La List Mna Netlist Problem Seq State Treelink
