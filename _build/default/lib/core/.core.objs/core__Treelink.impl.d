lib/core/treelink.ml: Array List Netlist
