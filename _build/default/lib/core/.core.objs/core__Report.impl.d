lib/core/report.ml: Array Buffer Eval Float Format List Netlist Printf Problem State String
