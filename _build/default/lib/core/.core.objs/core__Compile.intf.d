lib/core/compile.mli: Devices Netlist Problem
