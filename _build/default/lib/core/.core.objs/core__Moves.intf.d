lib/core/moves.mli: Anneal La Problem State
