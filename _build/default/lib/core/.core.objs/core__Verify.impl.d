lib/core/verify.ml: Array Awe Builtin Eval Float La List Mna Netlist Option Problem State String
