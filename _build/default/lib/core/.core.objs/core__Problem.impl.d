lib/core/problem.ml: Devices List Netlist State Treelink
