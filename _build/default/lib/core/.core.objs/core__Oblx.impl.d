lib/core/oblx.ml: Anneal Array Eval Float Int List Moves Option Problem State Unix Weights
