lib/core/template.ml: Array Devices List Netlist
