lib/core/corners.mli: Devices Problem
