lib/core/compile.ml: Array Builtin Devices Float List Netlist Option Printf Problem Result State Template Treelink
