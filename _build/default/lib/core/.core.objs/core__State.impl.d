lib/core/state.ml: Array Float Int
