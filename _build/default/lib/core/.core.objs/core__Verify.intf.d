lib/core/verify.mli: Problem State
