lib/core/eval.ml: Array Awe Builtin Devices Float La List Mna Netlist Option Problem State String Treelink Weights
