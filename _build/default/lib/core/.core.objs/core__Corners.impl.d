lib/core/corners.ml: Array Compile Devices Float List Netlist Problem State Verify
