type t = { spec_names : string array; var_names : string array; matrix : float array array }

(* Measure spec values with the bias re-solved, so the sensitivity
   includes the operating-point shift the variable change causes. *)
let measure_rebiased (p : Problem.t) (st : State.t) =
  ignore (Moves.newton_global p st);
  let m = Eval.measure p st in
  m.Eval.spec_values

let compute ?(rel_step = 0.02) (p : Problem.t) (st : State.t) =
  let n_user = Problem.n_user_vars p in
  let spec_names = Array.of_list (List.map (fun (s : Problem.spec) -> s.Problem.spec_name) p.Problem.specs) in
  let var_names =
    Array.init n_user (fun i ->
        match st.State.info.(i) with
        | State.User { name; _ } -> name
        | State.Node_voltage _ -> assert false)
  in
  let base = State.snapshot st in
  let base_vals = measure_rebiased p base in
  let matrix = Array.make_matrix (Array.length spec_names) n_user nan in
  for vi = 0 to n_user - 1 do
    let v0 = st.State.values.(vi) in
    let probe direction =
      let work = State.snapshot st in
      (match work.State.info.(vi) with
      | State.User { steps = Some _; _ } ->
          (* one grid slot in the requested direction *)
          ignore (State.set_grid_slot work vi (work.State.grid_index.(vi) + direction))
      | State.User _ | State.Node_voltage _ ->
          let dv = Float.abs v0 *. rel_step +. 1e-12 in
          State.set_initial work vi (v0 +. (float_of_int direction *. dv)));
      (work.State.values.(vi), measure_rebiased p work)
    in
    let v_plus, vals_plus = probe 1 in
    let v_minus, vals_minus = probe (-1) in
    let dv = v_plus -. v_minus in
    if Float.abs dv > 0.0 then
      Array.iteri
        (fun si name ->
          let get vals = match List.assoc name vals with Some x -> Some x | None -> None in
          match (get vals_plus, get vals_minus, get base_vals) with
          | Some sp, Some sm, Some s0 when Float.abs s0 > 1e-30 ->
              let dspec = (sp -. sm) /. s0 in
              let dvar = dv /. (Float.abs v0 +. 1e-30) in
              matrix.(si).(vi) <- dspec /. dvar
          | _, _, _ -> ())
        spec_names
  done;
  { spec_names; var_names; matrix }

let dominant t ~spec n =
  let si =
    let rec find k =
      if k >= Array.length t.spec_names then raise Not_found
      else if t.spec_names.(k) = spec then k
      else find (k + 1)
    in
    find 0
  in
  let pairs =
    Array.to_list (Array.mapi (fun vi s -> (t.var_names.(vi), s)) t.matrix.(si))
  in
  let sorted =
    List.sort
      (fun (_, a) (_, b) -> Float.compare (Float.abs b) (Float.abs a))
      (List.filter (fun (_, s) -> Float.is_finite s) pairs)
  in
  List.filteri (fun k _ -> k < n) sorted

let pp ppf t =
  Format.fprintf ppf "%-10s" "";
  Array.iter (fun v -> Format.fprintf ppf " %9s" v) t.var_names;
  Format.fprintf ppf "@\n";
  Array.iteri
    (fun si row ->
      Format.fprintf ppf "%-10s" t.spec_names.(si);
      Array.iter
        (fun s ->
          if Float.is_finite s then Format.fprintf ppf " %9.3f" s
          else Format.fprintf ppf " %9s" "-")
        row;
      Format.fprintf ppf "@\n")
    t.matrix
