(* Device-template expansion: the encapsulated evaluator for a MOS model
   declares drain/source series resistances, which introduce internal
   nodes. The expanded circuit is what both the bias network (type "B" in
   Table 1) and the small-signal AWE circuits (type "A") are built from —
   this is why the relaxed-dc formulation's added node-voltage variables
   typically outnumber the user's own variables. *)

let rd_expr rd_ohm_m w_expr =
  (* rd = rd_ohm_m / W; W comes from the design grid so it is > 0. *)
  Netlist.Expr.Div (Netlist.Expr.const rd_ohm_m, w_expr)

let expand ~registry (circuit : Netlist.Circuit.t) =
  let extra_nodes = ref [] in
  let n_base = Netlist.Circuit.node_count circuit in
  let next = ref n_base in
  let fresh name =
    let id = !next in
    incr next;
    extra_nodes := name :: !extra_nodes;
    id
  in
  let out = ref [] in
  let emit e = out := e :: !out in
  Array.iter
    (fun (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Mosfet ({ name; d; g = _; s; b = _; model; w; _ } as mos) -> begin
          match Devices.Registry.find_exn registry model with
          | Devices.Sig.Mos { rd_ohm_m; _ } when rd_ohm_m > 0.0 ->
              let d_int = fresh (name ^ "#d") in
              let s_int = fresh (name ^ "#s") in
              emit
                (Netlist.Circuit.Resistor
                   { name = name ^ "#rd"; n1 = d; n2 = d_int; value = rd_expr rd_ohm_m w });
              emit
                (Netlist.Circuit.Resistor
                   { name = name ^ "#rs"; n1 = s; n2 = s_int; value = rd_expr rd_ohm_m w });
              emit (Netlist.Circuit.Mosfet { mos with d = d_int; s = s_int })
          | Devices.Sig.Mos _ | Devices.Sig.Bjt _ -> emit e
        end
      | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
      | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _
      | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _
      | Netlist.Circuit.Bjt _ ->
          emit e)
    circuit.Netlist.Circuit.elements;
  {
    Netlist.Circuit.node_names =
      Array.append circuit.Netlist.Circuit.node_names
        (Array.of_list (List.rev !extra_nodes));
    elements = Array.of_list (List.rev !out);
  }
