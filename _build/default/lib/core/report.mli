(** Human-readable reporting: engineering-notation values, spec rows in the
    style of the paper's tables, and sized-design listings. *)

(** [eng v] formats with an engineering suffix ("73.7meg", "2.1u"). *)
val eng : float -> string

(** [goal_text spec] renders the target, e.g. ">=50meg", "maximize". *)
val goal_text : Problem.spec -> string

(** [spec_row spec ~predicted ~simulated] is one Table-2-style row:
    name, goal, OBLX prediction / simulator measurement. *)
val spec_row :
  Problem.spec -> predicted:float option -> simulated:(float, string) result option -> string

(** [sizes p st] lists every user variable's final value. *)
val sizes : Problem.t -> State.t -> (string * float) list

(** [print_sizes ppf p st] pretty-prints the sized design. *)
val print_sizes : Format.formatter -> Problem.t -> State.t -> unit

(** [analysis_row name a] is one Table-1-style line. *)
val analysis_row : string -> Problem.analysis -> string

(** [sized_netlist p st] renders the bias network of the finished design
    as a SPICE deck with every value expression evaluated — the artifact a
    designer hands to layout or to a production simulator. Device-template
    internal resistors are folded back out (they belong to the model, not
    the schematic). *)
val sized_netlist : Problem.t -> State.t -> string
