(* Reference-simulator evaluation of the specs. See verify.mli. *)

exception Sim_failed of string

let value_of p st =
  let env = Eval.value_env p st in
  fun e -> Netlist.Expr.eval env e

(* Solve every jig with full Newton-Raphson and wrap direct-AC measurement
   closures per transfer function. *)
type jig_sim = {
  lin : Mna.Linearize.t;
  sol : Mna.Dc.solution;
  tf_ports : (string * Problem.tf) list;
}

let solve_jigs p st =
  let value = value_of p st in
  List.map
    (fun (j : Problem.jig) ->
      match Mna.Dc.solve ~value ~registry:p.Problem.registry j.jig_circuit with
      | Error e -> raise (Sim_failed (j.jig_name ^ ": " ^ e))
      | Ok sol ->
          let ops name = List.assoc_opt name sol.Mna.Dc.ops in
          let lin = Mna.Linearize.build ~value ~ops j.jig_circuit in
          { lin; sol; tf_ports = j.tfs })
    p.Problem.jigs

let find_tf jigs name =
  List.find_map
    (fun js ->
      Option.map (fun tf -> (js, tf)) (List.assoc_opt name js.tf_ports))
    jigs

let simulate_specs (p : Problem.t) (st : State.t) =
  try
    let value = value_of p st in
    let jigs = solve_jigs p st in
    (* Exact bias operating point for device refs and power. *)
    let bias_sol =
      match Mna.Dc.solve ~value ~registry:p.Problem.registry p.Problem.bias with
      | Ok s -> s
      | Error e -> raise (Sim_failed ("bias: " ^ e))
    in
    let tf_measure name =
      match find_tf jigs name with
      | None -> raise (Sim_failed ("unknown transfer function " ^ name))
      | Some (js, tf) ->
          let b = Mna.Linearize.excitation_of js.lin ~src:tf.Problem.src in
          let sel =
            Mna.Linearize.output_vector js.lin ~pos:tf.Problem.out_pos ~neg:tf.Problem.out_neg
          in
          (js, b, sel)
    in
    let lookup path =
      match path with
      | [ name ] -> (Eval.value_env p st).Netlist.Expr.lookup [ name ]
      | [] -> raise Not_found
      | parts ->
          let rec split_last acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split_last (x :: acc) rest
            | [] -> assert false
          in
          let devparts, field = split_last [] parts in
          let devname = String.concat "." devparts in
          let op =
            (* Prefer the jig operating point (it is what AC sees), fall
               back to the bias network. *)
            match
              List.find_map (fun js -> List.assoc_opt devname js.sol.Mna.Dc.ops) jigs
            with
            | Some op -> Some op
            | None -> List.assoc_opt devname bias_sol.Mna.Dc.ops
          in
          (match op with Some op -> Eval.op_field op field | None -> raise Not_found)
    in
    let call name args =
      let tfarg = function
        | Netlist.Expr.Name n -> n
        | Netlist.Expr.Num _ -> raise (Sim_failed (name ^ ": expected transfer-function name"))
      in
      let numarg = function
        | Netlist.Expr.Num v -> v
        | Netlist.Expr.Name n -> raise (Sim_failed (name ^ ": unexpected name " ^ n))
      in
      match (name, args) with
      | "dc_gain", [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          Mna.Ac.dc_gain js.lin ~b ~sel
      | "ugf", [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          Option.value ~default:0.0 (Mna.Ac.unity_gain_freq js.lin ~b ~sel)
      | ("phase_margin" | "pm"), [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          Option.value ~default:180.0 (Mna.Ac.phase_margin js.lin ~b ~sel)
      | "gain_at", [ tf; f ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          La.Cpx.abs (Mna.Ac.transfer js.lin ~b ~sel ~w:(2.0 *. Float.pi *. numarg f))
      | "bw3db", [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          let a0 = Float.abs (Mna.Ac.dc_gain js.lin ~b ~sel) in
          let target = a0 /. Float.sqrt 2.0 in
          (* scan for the -3 dB point directly *)
          let rec scan f =
            if f > 1e12 then 1e12
            else if La.Cpx.abs (Mna.Ac.transfer js.lin ~b ~sel ~w:(2.0 *. Float.pi *. f)) < target
            then f
            else scan (f *. 1.05)
          in
          scan 1.0
      | "pole1", [ tf ] ->
          (* The reference flow extracts poles with AWE at the simulator's
             exact operating point (HSPICE's .pz plays this role). *)
          let js, b, sel = tf_measure (tfarg tf) in
          (match Awe.Rom.build js.lin ~b ~sel with
          | Ok rom -> Option.value ~default:0.0 (Awe.Rom.dominant_pole_hz rom)
          | Error e -> raise (Sim_failed ("pole1: " ^ e)))
      | "gain_margin_db", [ tf ] ->
          let js, b, sel = tf_measure (tfarg tf) in
          (match Awe.Rom.build js.lin ~b ~sel with
          | Ok rom -> Option.value ~default:60.0 (Awe.Rom.gain_margin_db rom)
          | Error e -> raise (Sim_failed ("gain_margin_db: " ^ e)))
      | "area", [] -> Eval.active_area_um2 p st
      | "power", [] -> Mna.Dc.supply_power bias_sol ~value
      | "supply_current", [ src ] -> begin
          let srcname =
            match src with
            | Netlist.Expr.Name n -> n
            | Netlist.Expr.Num _ -> raise (Sim_failed "supply_current: expected a source name")
          in
          match Mna.Dc.branch_current bias_sol srcname with
          | Some i -> Float.abs i
          | None -> raise (Sim_failed ("supply_current: unknown source " ^ srcname))
        end
      | _ -> begin
          try Builtin.math_call name args
          with Builtin.Unknown_function f -> raise (Sim_failed ("unknown function " ^ f))
        end
    in
    let env = { Netlist.Expr.lookup; call } in
    let values =
      List.map
        (fun (s : Problem.spec) ->
          let v =
            try Ok (Netlist.Expr.eval env s.expr) with
            | Sim_failed m -> Error m
            | Netlist.Expr.Eval_error m -> Error m
          in
          (s.spec_name, v))
        p.Problem.specs
    in
    Ok values
  with
  | Sim_failed m -> Error m
  | Failure m -> Error m

let kcl_abs_error (p : Problem.t) (st : State.t) =
  match Eval.bias_point p st with
  | bp ->
      Ok (Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0.0 bp.Eval.residuals)
  | exception Failure m -> Error m

let bias_voltage_error (p : Problem.t) (st : State.t) =
  let value = value_of p st in
  match Mna.Dc.solve ~value ~registry:p.Problem.registry p.Problem.bias with
  | Error e -> Error e
  | Ok sol ->
      let relaxed = Eval.node_voltages p st in
      let worst = ref 0.0 in
      Array.iteri
        (fun node v ->
          if node > 0 then
            worst := Float.max !worst (Float.abs (v -. Mna.Dc.node_voltage sol node)))
        relaxed;
      Ok !worst

let transient_slew (p : Problem.t) (st : State.t) ~tf ~vstep ~tstop ~dt =
  let value = value_of p st in
  (* Locate the jig owning [tf] and its ports. *)
  let found =
    List.find_map
      (fun (j : Problem.jig) ->
        Option.map (fun ports -> (j, ports)) (List.assoc_opt tf j.Problem.tfs))
      p.Problem.jigs
  in
  match found with
  | None -> Error ("unknown transfer function " ^ tf)
  | Some (j, ports) -> begin
      let src = ports.Problem.src in
      (* The stimulus steps the source's dc value by vstep at tstop/10. *)
      let v0 =
        match Netlist.Circuit.find_element j.jig_circuit src with
        | Netlist.Circuit.Vsource { dc; _ } | Netlist.Circuit.Isource { dc; _ } -> value dc
        | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
        | Netlist.Circuit.Vcvs _ | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _
        | Netlist.Circuit.Ccvs _ | Netlist.Circuit.Mosfet _ | Netlist.Circuit.Bjt _ ->
            0.0
        | exception Not_found -> 0.0
      in
      let t_step = tstop /. 10.0 in
      let stim = [ (src, fun t -> if t >= t_step then v0 +. vstep else v0) ] in
      match
        Mna.Tran.simulate ~value ~registry:p.Problem.registry ~tstop ~dt ~stimulus:stim
          j.jig_circuit
      with
      | Error e -> Error e
      | Ok r ->
          let sr_pos = Mna.Tran.slew_rate r ports.Problem.out_pos ~t_from:t_step ~t_to:tstop in
          let sr =
            match ports.Problem.out_neg with
            | None -> sr_pos
            | Some neg ->
                (* differential output: slew of the difference *)
                let vp = Mna.Tran.node_waveform r ports.Problem.out_pos in
                let vn = Mna.Tran.node_waveform r neg in
                let best = ref 0.0 in
                Array.iteri
                  (fun k t ->
                    if k > 0 && t >= t_step then begin
                      let dtk = t -. r.Mna.Tran.times.(k - 1) in
                      if dtk > 0.0 then
                        best :=
                          Float.max !best
                            (Float.abs
                               ((vp.(k) -. vn.(k) -. (vp.(k - 1) -. vn.(k - 1))) /. dtk))
                    end)
                  r.Mna.Tran.times;
                !best
          in
          Ok sr
    end
