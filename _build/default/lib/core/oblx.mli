(** OBLX — the solution engine: simulated annealing over the compiled cost
    function, with adaptive weights, Hustin move selection, Lam cooling,
    range-limiter freezing and a final Newton-Raphson polish that makes the
    winning design dc-correct to simulator-like tolerances. *)

type trace_point = {
  tp_moves : int;
  tp_cost : float;
  tp_best : float;
  tp_max_kcl_rel : float;  (** worst relative KCL violation *)
  tp_max_kcl_abs : float;  (** worst absolute KCL current, A *)
  tp_temperature : float;
}

type result = {
  final : State.t;  (** best design found, NR-polished *)
  predicted : (string * float option) list;  (** OBLX's own spec predictions *)
  best_cost : float;
  moves : int;
  accepted : int;
  froze_early : bool;
  evals : int;  (** cost-function evaluations performed *)
  eval_time_ms : float;  (** mean wall time per evaluation *)
  run_time_s : float;
  trace : trace_point list;  (** per-stage, oldest first (Fig. 2 data) *)
}

(** [synthesize ?seed ?moves p] runs one annealing run. [moves] defaults to
    [3000 * n_vars] capped to a practical budget. *)
val synthesize : ?seed:int -> ?moves:int -> Problem.t -> result

(** [best_of ?seed ?moves ~runs p] performs several independent runs (the
    paper runs 5-10 overnight) and returns the lowest-cost result plus all
    individual results. *)
val best_of : ?seed:int -> ?moves:int -> runs:int -> Problem.t -> result * result list
