type trace_point = {
  tp_moves : int;
  tp_cost : float;
  tp_best : float;
  tp_max_kcl_rel : float;
  tp_max_kcl_abs : float;
  tp_temperature : float;
}

type result = {
  final : State.t;
  predicted : (string * float option) list;
  best_cost : float;
  moves : int;
  accepted : int;
  froze_early : bool;
  evals : int;
  eval_time_ms : float;
  run_time_s : float;
  trace : trace_point list;
}

let kcl_stats (bp : Eval.bias_point) =
  let rel = ref 0.0 and abs_ = ref 0.0 in
  Array.iteri
    (fun k r ->
      abs_ := Float.max !abs_ (Float.abs r);
      rel := Float.max !rel (Float.abs r /. (bp.Eval.res_scale.(k) +. 1e-9)))
    bp.Eval.residuals;
  (!rel, !abs_)

let synthesize ?(seed = 1) ?moves (p : Problem.t) =
  let n_vars = State.n_vars p.Problem.state0 in
  let total_moves =
    match moves with Some m -> m | None -> Int.min 150_000 (Int.max 8_000 (2000 * n_vars))
  in
  let weights = Weights.create () in
  let ctx = Moves.make p in
  let rng = Anneal.Rng.create seed in
  let evals = ref 0 in
  let eval_clock = ref 0.0 in
  let cost st =
    let t0 = Unix.gettimeofday () in
    let c = Eval.cost_scalar p weights st in
    eval_clock := !eval_clock +. (Unix.gettimeofday () -. t0);
    incr evals;
    if Float.is_finite c then c else 1e12
  in
  let trace = ref [] in
  let last_discrete = ref [||] in
  let stable_stages = ref 0 in
  let on_stage st (info : Anneal.Annealer.stage_info) =
    (* Adaptive weights from the unweighted group penalties. *)
    let m = Eval.measure p st in
    let _, perf, dev, dc = Eval.raw_terms p st m in
    let progress = float_of_int info.moves_done /. float_of_int total_moves in
    Weights.update weights ~progress ~perf ~dev ~dc;
    let rel, abs_ = kcl_stats m.Eval.bias in
    trace :=
      {
        tp_moves = info.moves_done;
        tp_cost = info.current_cost;
        tp_best = info.best_cost;
        tp_max_kcl_rel = rel;
        tp_max_kcl_abs = abs_;
        tp_temperature = info.temperature;
      }
      :: !trace;
    (* Discrete-variable stability for the freezing criterion. *)
    let disc = Array.copy st.State.grid_index in
    if !last_discrete <> [||] && disc = !last_discrete then incr stable_stages
    else stable_stages := 0;
    last_discrete := disc
  in
  let frozen _st = !stable_stages >= 8 && Moves.ranges_converged ctx in
  let problem =
    {
      Anneal.Annealer.classes = Moves.classes;
      propose = (fun st k rng -> Moves.propose ctx st k rng);
      cost;
      snapshot = State.snapshot;
      frozen = Some frozen;
      on_stage = Some on_stage;
      on_result = Some (fun k ~accepted -> Moves.record_result ctx k ~accepted);
    }
  in
  let t_start = Unix.gettimeofday () in
  let init = State.snapshot p.Problem.state0 in
  let outcome = Anneal.Annealer.run ~rng ~total_moves ~init problem in
  (* Final polish: drive the relaxed-dc residuals to zero with full NR so
     the winning design is dc-correct like a simulated circuit. *)
  let best = outcome.Anneal.Annealer.best in
  let rec polish k =
    if k = 0 then ()
    else begin
      match Moves.newton_step p best ~damping:1.0 with
      | Some change when change > 1e-12 -> polish (k - 1)
      | Some _ | None -> ()
    end
  in
  polish 25;
  (* If the iterated polish stalled short of dc-correctness, let the full
     simulator engine finish the job. *)
  (let bp = Eval.bias_point p best in
   let worst =
     Array.fold_left (fun a r -> Float.max a (Float.abs r)) 0.0 bp.Eval.residuals
   in
   if worst > 1e-9 then begin
     ignore (Moves.newton_global p best);
     polish 10
   end);
  let run_time_s = Unix.gettimeofday () -. t_start in
  let m = Eval.measure p best in
  {
    final = best;
    predicted = m.Eval.spec_values;
    best_cost = outcome.Anneal.Annealer.best_cost;
    moves = outcome.Anneal.Annealer.moves;
    accepted = outcome.Anneal.Annealer.accepted;
    froze_early = outcome.Anneal.Annealer.froze_early;
    evals = !evals;
    eval_time_ms = (if !evals > 0 then 1000.0 *. !eval_clock /. float_of_int !evals else 0.0);
    run_time_s;
    trace = List.rev !trace;
  }

let score (p : Problem.t) (r : result) =
  (* Rank runs by final cost, with failed measurements pushed last. *)
  let failed =
    List.exists (fun (_, v) -> v = None) r.predicted && p.Problem.specs <> []
  in
  if failed then r.best_cost +. 1e6 else r.best_cost

let best_of ?(seed = 1) ?moves ~runs (p : Problem.t) =
  if runs < 1 then invalid_arg "Oblx.best_of: runs must be >= 1";
  let results = List.init runs (fun k -> synthesize ~seed:(seed + (97 * k)) ?moves p) in
  let best =
    List.fold_left
      (fun acc r -> match acc with None -> Some r | Some b -> if score p r < score p b then Some r else acc)
      None results
  in
  (Option.get best, results)
