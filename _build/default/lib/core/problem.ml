(* The compiled synthesis problem: everything ASTRX produces from the
   input description, ready for OBLX to solve. *)

type tf = { out_pos : int; out_neg : int option; src : string }

type jig = {
  jig_name : string;
  jig_circuit : Netlist.Circuit.t;  (** template-expanded *)
  tfs : (string * tf) list;  (** transfer-function name -> ports *)
}

type spec = {
  spec_name : string;
  kind : Netlist.Ast.goal_kind;
  expr : Netlist.Expr.t;
  good : float;
  bad : float;
}

(* The Table-1 row: what ASTRX's analysis of the problem produced. *)
type analysis = {
  input_netlist_lines : int;
  input_synth_lines : int;
  n_user_vars : int;
  n_node_vars : int;
  n_cost_terms : int;
  lines_of_c : int;  (** size of the generated evaluator, C-lines metric *)
  bias_nodes : int;
  bias_elements : int;
  awe_circuits : (string * int * int) list;  (** jig, nodes, elements *)
}

type t = {
  title : string;
  registry : Devices.Registry.t;
  params : (string * Netlist.Expr.t) list;
  state0 : State.t;
  bias : Netlist.Circuit.t;  (** template-expanded bias network *)
  tl : Treelink.t;
  jigs : jig list;
  specs : spec list;
  regions : (string * Netlist.Ast.region_req) list;
  analysis : analysis;
}

let n_user_vars t = t.analysis.n_user_vars

(* Variable index of the first node-voltage variable. *)
let node_var_base t = t.analysis.n_user_vars

let find_spec t name = List.find_opt (fun s -> s.spec_name = name) t.specs
