(* Adaptive scalar weights for the penalty groups of C(x).

   The paper replaces hand-tuned weights with an adaptive algorithm so that
   no problem-specific constants are needed. The controller here follows
   the same contract: penalty-group weights ratchet up while their group
   remains violated as the anneal progresses, and relax slowly once the
   group is satisfied, so by freeze-out the penalties dominate any
   objective gradient and are driven to zero. *)

type t = {
  mutable w_perf : float;
  mutable w_dev : float;
  mutable w_dc : float;
}

let create () = { w_perf = 1.0; w_dev = 1.0; w_dc = 1.0 }
let copy t = { w_perf = t.w_perf; w_dev = t.w_dev; w_dc = t.w_dc }

let w_min = 1.0
let w_max = 1e4

let clamp w = Float.max w_min (Float.min w_max w)

(* [update t ~progress ~perf ~dev ~dc] takes the *unweighted* group
   penalties at the current state. Growth accelerates late in the anneal. *)
let update t ~progress ~perf ~dev ~dc =
  let gain = if progress < 0.3 then 1.02 else if progress < 0.7 then 1.08 else 1.15 in
  let adjust w violated = clamp (if violated then w *. gain else w *. 0.995) in
  t.w_perf <- adjust t.w_perf (perf > 1e-9);
  t.w_dev <- adjust t.w_dev (dev > 1e-9);
  t.w_dc <- adjust t.w_dc (dc > 1e-9)
