(* Tree-link analysis of the bias network: decide which node voltages are
   trivially determined (ground, or reachable from a determined node
   through independent voltage sources) and which become free variables of
   the relaxed-dc formulation.

   A voltage source between two undetermined nodes ties them into a
   "supernode": one shared variable plus a symbolic offset, and KCL is
   written for the group as a whole. *)

type assignment =
  | Fixed of Netlist.Expr.t  (** voltage is this expression of user vars *)
  | Free of int * Netlist.Expr.t
      (** variable index, plus an offset expression (usually 0) *)

type t = {
  of_node : assignment array;  (** indexed by bias-circuit node *)
  n_free : int;
  members : int list array;  (** free var index -> bias nodes in its group *)
  labels : string array;  (** free var index -> representative node name *)
}

let zero = Netlist.Expr.const 0.0

let analyze (circuit : Netlist.Circuit.t) =
  let n = Netlist.Circuit.node_count circuit in
  let assign : assignment option array = Array.make n None in
  assign.(0) <- Some (Fixed zero);
  (* Collect voltage-source edges: (np, nn, dc expr). VCVS with determined
     controls could be handled too; bias networks in practice use only
     independent sources, so VCVS in a bias net is rejected upstream. *)
  let vedges =
    Array.to_list circuit.Netlist.Circuit.elements
    |> List.filter_map (fun (e : Netlist.Circuit.element) ->
           match e with
           | Netlist.Circuit.Vsource { np; nn; dc; _ } -> Some (np, nn, dc)
           | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _
           | Netlist.Circuit.Inductor _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _
           | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _
           | Netlist.Circuit.Mosfet _ | Netlist.Circuit.Bjt _ ->
               None)
  in
  (* Fixpoint propagation of determined voltages across source edges. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (np, nn, dc) ->
        let propagate target source sign =
          match (assign.(target), assign.(source)) with
          | None, Some (Fixed e) ->
              let e' =
                if sign > 0 then Netlist.Expr.Add (e, dc) else Netlist.Expr.Sub (e, dc)
              in
              assign.(target) <- Some (Fixed e');
              changed := true
          | None, Some (Free (k, off)) ->
              let off' =
                if sign > 0 then Netlist.Expr.Add (off, dc) else Netlist.Expr.Sub (off, dc)
              in
              assign.(target) <- Some (Free (k, off'));
              changed := true
          | Some _, _ | None, None -> ()
        in
        (* v(np) = v(nn) + dc *)
        propagate np nn 1;
        propagate nn np (-1))
      vedges
  done;
  (* Remaining nodes become free variables; then one more propagation pass
     links any still-floating source edges into the new supernodes. *)
  let next_var = ref 0 in
  let rec sweep () =
    let made = ref false in
    Array.iteri
      (fun node a ->
        if a = None then begin
          assign.(node) <- Some (Free (!next_var, zero));
          incr next_var;
          made := true;
          (* Re-run propagation so chained sources join this group. *)
          let changed = ref true in
          while !changed do
            changed := false;
            List.iter
              (fun (np, nn, dc) ->
                let propagate target source sign =
                  match (assign.(target), assign.(source)) with
                  | None, Some (Fixed e) ->
                      assign.(target) <-
                        Some
                          (Fixed
                             (if sign > 0 then Netlist.Expr.Add (e, dc)
                              else Netlist.Expr.Sub (e, dc)));
                      changed := true
                  | None, Some (Free (k, off)) ->
                      assign.(target) <-
                        Some
                          (Free
                             ( k,
                               if sign > 0 then Netlist.Expr.Add (off, dc)
                               else Netlist.Expr.Sub (off, dc) ));
                      changed := true
                  | Some _, _ | None, None -> ()
                in
                propagate np nn 1;
                propagate nn np (-1))
              vedges
          done
        end)
      assign;
    if !made then sweep ()
  in
  sweep ();
  let of_node =
    Array.map (function Some a -> a | None -> assert false) assign
  in
  let n_free = !next_var in
  let members = Array.make n_free [] in
  let labels = Array.make n_free "" in
  Array.iteri
    (fun node a ->
      match a with
      | Free (k, _) ->
          members.(k) <- node :: members.(k);
          if labels.(k) = "" then labels.(k) <- circuit.Netlist.Circuit.node_names.(node)
      | Fixed _ -> ())
    of_node;
  { of_node; n_free; members; labels }
