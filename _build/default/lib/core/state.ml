(* The OBLX design state: one slot per independent variable x_i.

   User variables may be discrete (device geometries on a log or linear
   grid — etching precision makes finer exploration pointless, and the grid
   shrinks the search space) or continuous (currents, bias voltages). The
   node voltages added by the relaxed-dc formulation are always
   continuous. *)

type grid = Log_grid | Lin_grid

type var_info =
  | User of {
      name : string;
      vmin : float;
      vmax : float;
      grid : grid;
      steps : int option;  (** None = continuous *)
    }
  | Node_voltage of {
      label : string;  (** representative bias-circuit node name *)
      nodes : int list;  (** bias nodes sharing this variable (supernode) *)
      vmin : float;
      vmax : float;
    }

type t = {
  info : var_info array;
  values : float array;
  grid_index : int array;  (** current grid slot for discrete vars, else -1 *)
}

let n_vars t = Array.length t.info

let var_name info =
  match info with User { name; _ } -> name | Node_voltage { label; _ } -> "v(" ^ label ^ ")"

let is_discrete info =
  match info with User { steps = Some _; _ } -> true | User _ | Node_voltage _ -> false

let bounds info =
  match info with
  | User { vmin; vmax; _ } -> (vmin, vmax)
  | Node_voltage { vmin; vmax; _ } -> (vmin, vmax)

(* Value of grid slot [k] for a discrete variable with [n] steps. *)
let grid_value ~vmin ~vmax ~grid ~n k =
  if n <= 1 then vmin
  else begin
    let f = float_of_int k /. float_of_int (n - 1) in
    match grid with
    | Lin_grid -> vmin +. (f *. (vmax -. vmin))
    | Log_grid -> vmin *. ((vmax /. vmin) ** f)
  end

(* Nearest grid slot to [v]. *)
let grid_slot ~vmin ~vmax ~grid ~n v =
  if n <= 1 then 0
  else begin
    let f =
      match grid with
      | Lin_grid -> (v -. vmin) /. (vmax -. vmin)
      | Log_grid -> Float.log (Float.max (v /. vmin) 1e-30) /. Float.log (vmax /. vmin)
    in
    Int.max 0 (Int.min (n - 1) (int_of_float (Float.round (f *. float_of_int (n - 1)))))
  end

let create infos =
  let n = Array.length infos in
  let values = Array.make n 0.0 in
  let grid_index = Array.make n (-1) in
  Array.iteri
    (fun i info ->
      match info with
      | User { vmin; vmax; grid; steps = Some s; _ } ->
          let mid =
            match grid with
            | Log_grid -> Float.sqrt (vmin *. vmax)
            | Lin_grid -> 0.5 *. (vmin +. vmax)
          in
          let k = grid_slot ~vmin ~vmax ~grid ~n:s mid in
          grid_index.(i) <- k;
          values.(i) <- grid_value ~vmin ~vmax ~grid ~n:s k
      | User { vmin; vmax; grid; steps = None; _ } ->
          values.(i) <-
            (match grid with
            | Log_grid -> Float.sqrt (Float.max vmin 1e-30 *. Float.max vmax 1e-30)
            | Lin_grid -> 0.5 *. (vmin +. vmax))
      | Node_voltage { vmin; vmax; _ } -> values.(i) <- 0.5 *. (vmin +. vmax))
    infos;
  { info = infos; values; grid_index }

let set_initial t i v =
  match t.info.(i) with
  | User { vmin; vmax; grid; steps = Some s; _ } ->
      let k = grid_slot ~vmin ~vmax ~grid ~n:s v in
      t.grid_index.(i) <- k;
      t.values.(i) <- grid_value ~vmin ~vmax ~grid ~n:s k
  | User { vmin; vmax; _ } | Node_voltage { vmin; vmax; _ } ->
      t.values.(i) <- Float.max vmin (Float.min vmax v)

let snapshot t =
  { info = t.info; values = Array.copy t.values; grid_index = Array.copy t.grid_index }

let restore ~from t =
  Array.blit from.values 0 t.values 0 (Array.length t.values);
  Array.blit from.grid_index 0 t.grid_index 0 (Array.length t.grid_index)

(* Clamp a proposed continuous value into the variable's range. *)
let clamp t i v =
  let lo, hi = bounds t.info.(i) in
  Float.max lo (Float.min hi v)

(* Move a discrete variable to slot [k] (clamped); returns the old slot. *)
let set_grid_slot t i k =
  match t.info.(i) with
  | User { vmin; vmax; grid; steps = Some s; _ } ->
      let old = t.grid_index.(i) in
      let k = Int.max 0 (Int.min (s - 1) k) in
      t.grid_index.(i) <- k;
      t.values.(i) <- grid_value ~vmin ~vmax ~grid ~n:s k;
      old
  | User _ | Node_voltage _ -> invalid_arg "State.set_grid_slot: not discrete"

let lookup_value t name =
  let rec scan i =
    if i >= Array.length t.info then raise Not_found
    else
      match t.info.(i) with
      | User { name = n; _ } when n = name -> t.values.(i)
      | User _ | Node_voltage _ -> scan (i + 1)
  in
  scan 0
