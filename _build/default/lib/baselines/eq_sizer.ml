(* Square-law hand-design of the 5T OTA, as an equation-based synthesis
   tool would codify it. Process constants are the long-channel values a
   designer would read off the p1u2 datasheet — exactly the simplification
   (I = K'W/2L (Vgs-Vt)^2, no mobility degradation, no velocity
   saturation) the paper calls out as breaking down. *)

type design = { sizes : (string * float) list; predicted : (string * float) list }

(* First-order p1u2 constants. *)
let kp_n = 95e-6
let kp_p = 32e-6
let lambda_n = 0.04
let lambda_p = 0.06
let cox = 1.7e-3

let size ~ugf_target ~sr_target ~cl ~vdd =
  let i_tail = sr_target *. cl in
  let gm1 = 2.0 *. Float.pi *. ugf_target *. cl in
  let id1 = i_tail /. 2.0 in
  let l = 2e-6 in
  let wl1 = gm1 *. gm1 /. (2.0 *. kp_n *. id1) in
  let w1 = Float.max 2e-6 (wl1 *. l) in
  let vdsat_mirror = 0.35 in
  let wl3 = 2.0 *. id1 /. (kp_p *. vdsat_mirror *. vdsat_mirror) in
  let w3 = Float.max 2e-6 (wl3 *. l) in
  let vdsat_tail = 0.35 in
  let wl5 = 2.0 *. i_tail /. (kp_n *. vdsat_tail *. vdsat_tail) in
  let w5 = Float.max 2e-6 (wl5 *. l) in
  let adm = gm1 /. (id1 *. (lambda_n +. lambda_p)) in
  let adm_db = 20.0 *. Float.log10 adm in
  (* Non-dominant pole at the mirror node: gm3 over the gate capacitance
     of the mirror pair. *)
  let gm3 = Float.sqrt (2.0 *. kp_p *. wl3 *. id1) in
  let cmirror = 2.0 *. (2.0 /. 3.0) *. cox *. w3 *. l in
  let f_nd = gm3 /. (2.0 *. Float.pi *. cmirror) in
  let pm = 90.0 -. (Float.atan (ugf_target /. f_nd) *. 180.0 /. Float.pi) in
  let area_um2 = ((2.0 *. w1 *. l) +. (2.0 *. w3 *. l) +. (2.0 *. w5 *. l)) *. 1e12 in
  {
    sizes =
      [ ("w1", w1); ("l1", l); ("w3", w3); ("l3", l); ("w5", w5); ("l5", l); ("ib", i_tail) ];
    predicted =
      [
        ("adm", adm_db);
        ("ugf", ugf_target);
        ("pm", pm);
        ("sr", sr_target);
        ("pwr", vdd *. 2.0 *. i_tail);
        ("area", area_um2);
      ];
  }

let prediction_error () =
  match Core.Compile.compile_source Suite.Simple_ota.source with
  | Error e -> Error e
  | Ok p ->
      let d = size ~ugf_target:50e6 ~sr_target:10e6 ~cl:1e-12 ~vdd:5.0 in
      let st = Core.State.snapshot p.Core.Problem.state0 in
      Array.iteri
        (fun i info ->
          match info with
          | Core.State.User { name; _ } -> begin
              match List.assoc_opt name d.sizes with
              | Some v -> Core.State.set_initial st i v
              | None -> ()
            end
          | Core.State.Node_voltage _ -> ())
        st.Core.State.info;
      (match Core.Verify.simulate_specs p st with
      | Error e -> Error e
      | Ok sims ->
          let rows =
            List.filter_map
              (fun (name, eq_pred) ->
                match List.assoc_opt name sims with
                | Some (Ok sim) when Float.abs sim > 1e-30 ->
                    Some (name, eq_pred, sim, Float.abs (eq_pred -. sim) /. Float.abs sim)
                | Some (Ok _) | Some (Error _) | None -> None)
              d.predicted
          in
          Ok rows)
