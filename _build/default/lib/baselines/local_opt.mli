(** DELIGHT.SPICE-style baseline: local (derivative-free, Nelder-Mead)
    optimization over the user variables, evaluating each candidate
    through the full reference simulator (exact Newton-Raphson bias, AWE
    at the exact operating point). No hill-climbing, no relaxed dc.

    This is the paper's Section-II foil: simulation-in-the-loop local
    optimization is accurate but starting-point sensitive — from a random
    start it converges to whatever local minimum is nearby. *)

type run = {
  start_cost : float;
  final_cost : float;
  evals : int;
  constraints_met : bool;  (** every constraint within 2% of its goal *)
}

(** [optimize ?max_evals p ~rng] runs Nelder-Mead from a random starting
    point drawn with [rng]. *)
val optimize : ?max_evals:int -> Core.Problem.t -> rng:Anneal.Rng.t -> run

(** [starting_point_study ?runs ?max_evals p ~seed] repeats [optimize]
    from independent random starts and reports each run — the fraction
    with [constraints_met] measures starting-point sensitivity. *)
val starting_point_study : ?runs:int -> ?max_evals:int -> Core.Problem.t -> seed:int -> run list
