(** OPASYN-style equation-based sizer for the Simple OTA topology: the
    classical square-law design procedure a designer would codify once per
    topology. It predicts performance from first-order hand equations —
    the whole point of the comparison is that those predictions diverge
    from detailed simulation (Fig. 3's right-hand group trades months of
    preparatory effort for accuracy that is only as good as the
    equations). *)

type design = {
  sizes : (string * float) list;  (** variable name -> value, Simple OTA vars *)
  predicted : (string * float) list;
      (** the hand-equation performance predictions: adm (dB), ugf (Hz),
          pm (deg), sr (V/s), pwr (W), area (um^2) *)
}

(** [size ~ugf_target ~sr_target ~cl ~vdd] runs the design procedure. *)
val size : ugf_target:float -> sr_target:float -> cl:float -> vdd:float -> design

(** [prediction_error ()] sizes the Simple OTA for its benchmark targets,
    re-measures the equation-based design with the reference simulator,
    and returns per-spec (name, equation prediction, simulated value,
    relative error). This is the measured datum behind Fig. 3's
    "equation-based accuracy" axis. *)
val prediction_error : unit -> ((string * float * float * float) list, string) result
