type run = { start_cost : float; final_cost : float; evals : int; constraints_met : bool }

(* Candidate vector: user variables only, log-scaled where the variable is
   positive (sizes, currents) for better conditioning. *)
type coding = { p : Core.Problem.t; log_coded : bool array; lo : float array; hi : float array }

let coding_of (p : Core.Problem.t) =
  let n = Core.Problem.n_user_vars p in
  let log_coded = Array.make n false in
  let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
  Array.iteri
    (fun i info ->
      if i < n then begin
        match info with
        | Core.State.User { vmin; vmax; grid; _ } ->
            let logc = grid = Core.State.Log_grid && vmin > 0.0 in
            log_coded.(i) <- logc;
            lo.(i) <- (if logc then Float.log vmin else vmin);
            hi.(i) <- (if logc then Float.log vmax else vmax)
        | Core.State.Node_voltage _ -> ()
      end)
    p.Core.Problem.state0.Core.State.info;
  { p; log_coded; lo; hi }

let decode c (x : float array) =
  let st = Core.State.snapshot c.p.Core.Problem.state0 in
  Array.iteri
    (fun i xi ->
      let clamped = Float.max c.lo.(i) (Float.min c.hi.(i) xi) in
      let v = if c.log_coded.(i) then Float.exp clamped else clamped in
      Core.State.set_initial st i v)
    x;
  st

(* Full-simulation evaluation: exact spec values through the reference
   simulator, good/bad-normalized cost, large penalty when the simulator
   itself fails to converge. *)
let simulate_cost c (x : float array) =
  let st = decode c x in
  match Core.Verify.simulate_specs c.p st with
  | Error _ -> 100.0
  | Ok sims ->
      let vals =
        List.map (fun (n, r) -> (n, match r with Ok v -> Some v | Error _ -> None)) sims
      in
      let obj, perf = Core.Eval.cost_of_spec_values c.p vals in
      obj +. (10.0 *. perf)

let constraints_met_at c (x : float array) =
  let st = decode c x in
  match Core.Verify.simulate_specs c.p st with
  | Error _ -> false
  | Ok sims ->
      List.for_all
        (fun (s : Core.Problem.spec) ->
          match List.assoc_opt s.Core.Problem.spec_name sims with
          | Some (Ok v) -> begin
              match s.kind with
              | Netlist.Ast.Constraint_ge -> v >= s.good *. 0.98
              | Netlist.Ast.Constraint_le -> v <= s.good *. 1.02
              | Netlist.Ast.Objective_max | Netlist.Ast.Objective_min -> true
            end
          | Some (Error _) | None -> false)
        c.p.Core.Problem.specs

(* Textbook Nelder-Mead with standard coefficients. *)
let nelder_mead ~f ~x0 ~scale ~max_evals =
  let n = Array.length x0 in
  let evals = ref 0 in
  let fe x =
    incr evals;
    f x
  in
  let simplex =
    Array.init (n + 1) (fun k ->
        let x = Array.copy x0 in
        if k > 0 then x.(k - 1) <- x.(k - 1) +. scale.(k - 1);
        (x, 0.0))
  in
  Array.iteri (fun k (x, _) -> simplex.(k) <- (x, fe x)) simplex;
  let sort () = Array.sort (fun (_, a) (_, b) -> Float.compare a b) simplex in
  sort ();
  let centroid () =
    let c = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let x, _ = simplex.(k) in
      La.Vec.axpy (1.0 /. float_of_int n) x c
    done;
    c
  in
  let blend a xc xw = Array.init n (fun i -> xc.(i) +. (a *. (xc.(i) -. xw.(i)))) in
  while !evals < max_evals do
    let xc = centroid () in
    let xw, fw = simplex.(n) in
    let _, fbest = simplex.(0) in
    let _, fsecond = simplex.(n - 1) in
    let xr = blend 1.0 xc xw in
    let fr = fe xr in
    if fr < fbest then begin
      let xe = blend 2.0 xc xw in
      let fex = fe xe in
      simplex.(n) <- (if fex < fr then (xe, fex) else (xr, fr))
    end
    else if fr < fsecond then simplex.(n) <- (xr, fr)
    else begin
      let xk = blend (-0.5) xc xw in
      let fk = fe xk in
      if fk < fw then simplex.(n) <- (xk, fk)
      else begin
        (* shrink toward the best vertex *)
        let xb, _ = simplex.(0) in
        for k = 1 to n do
          let x, _ = simplex.(k) in
          let xs = Array.init n (fun i -> xb.(i) +. (0.5 *. (x.(i) -. xb.(i)))) in
          simplex.(k) <- (xs, fe xs)
        done
      end
    end;
    sort ()
  done;
  (fst simplex.(0), snd simplex.(0), !evals)

let optimize ?(max_evals = 400) (p : Core.Problem.t) ~rng =
  let c = coding_of p in
  let n = Array.length c.lo in
  let x0 = Array.init n (fun i -> Anneal.Rng.uniform rng c.lo.(i) c.hi.(i)) in
  let scale = Array.init n (fun i -> 0.1 *. (c.hi.(i) -. c.lo.(i))) in
  let start_cost = simulate_cost c x0 in
  let xbest, fbest, evals = nelder_mead ~f:(simulate_cost c) ~x0 ~scale ~max_evals in
  { start_cost; final_cost = fbest; evals; constraints_met = constraints_met_at c xbest }

let starting_point_study ?(runs = 10) ?max_evals (p : Core.Problem.t) ~seed =
  let rng = Anneal.Rng.create seed in
  List.init runs (fun _ -> optimize ?max_evals p ~rng:(Anneal.Rng.split rng))
