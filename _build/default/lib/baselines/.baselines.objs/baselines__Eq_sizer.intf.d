lib/baselines/eq_sizer.mli:
