lib/baselines/local_opt.ml: Anneal Array Core Float La List Netlist
