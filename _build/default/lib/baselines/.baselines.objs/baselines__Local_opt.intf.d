lib/baselines/local_opt.mli: Anneal Core
