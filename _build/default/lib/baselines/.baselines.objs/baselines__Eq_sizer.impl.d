lib/baselines/eq_sizer.ml: Array Core Float List Suite
