(** Elaboration: expand subcircuit instances into a flat {!Circuit.t}.

    Node and element names of expanded instances get a ["inst."] prefix;
    instance parameters are substituted structurally into the body's value
    expressions. ["0"] and ["gnd"] both denote ground. *)

exception Error of string

(** [flatten ~subckts body] elaborates a list of element cards against the
    given subcircuit definitions. Nested instances are supported; recursion
    (a subcircuit instantiating itself) is an [Error]. *)
val flatten : subckts:Ast.subckt list -> Ast.element list -> Circuit.t
