(** The arithmetic expression language used in element values and in
    performance-specification cards, e.g.
    ['I / (2 * (Cl + xamp.m1.cd))'] or ['dc_gain(tf)'].

    Grammar (precedence low to high):
    {v
      expr   ::= term (('+'|'-') term)*
      term   ::= factor (('*'|'/') factor)*
      factor ::= atom ('^' factor)?
      atom   ::= number | ref | call | '-' atom | '(' expr ')'
      ref    ::= ident ('.' ident)*
      call   ::= ident '(' expr (',' expr)* ')'
    v}
    Numbers accept SPICE suffixes ([1Meg], [10p]). *)

type t =
  | Const of float
  | Ref of string list
      (** A possibly dotted reference: a plain variable/parameter ([I]), or
          a device operating-point quantity ([xamp.m1.cd]). *)
  | Call of string * t list
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t

exception Parse_error of string

(** [parse s] parses an expression. @raise Parse_error *)
val parse : string -> t

(** Evaluation environment. [lookup path] resolves dotted references;
    [call name args] applies a function to already-evaluated numeric
    arguments, except that a sub-expression which is a bare identifier is
    passed through [name_arg] resolution first: functions like [dc_gain(tf)]
    take the {e name} [tf], not a number. The environment decides, via
    [is_name name arg_index fname], whether a given argument position of
    [fname] is a name. *)
type env = {
  lookup : string list -> float;  (** raise [Not_found] for unknown refs *)
  call : string -> arg list -> float;
}

and arg = Name of string | Num of float

exception Eval_error of string

(** [eval env e] evaluates [e]. Unknown references become [Eval_error]. *)
val eval : env -> t -> float

(** [subst map e] structurally substitutes single-identifier references:
    any [Ref [x]] with [x] bound in [map] is replaced — used when
    instantiating subcircuit parameters. *)
val subst : (string * t) list -> t -> t

(** [refs e] lists every dotted reference occurring in [e] (no dedup). *)
val refs : t -> string list list

(** [calls e] lists every function name called in [e] with its argument
    expressions. *)
val calls : t -> (string * t list) list

(** [size e] counts AST nodes — used for the "Lines of C" size metric. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [const x] and [var name] are convenience constructors. *)
val const : float -> t

val var : string -> t
