(* A flat (elaborated) circuit: subcircuits expanded, node names interned to
   integers with ground = 0, hierarchical element names like "xamp.m1". *)

type node = int

type element =
  | Resistor of { name : string; n1 : node; n2 : node; value : Expr.t }
  | Capacitor of { name : string; n1 : node; n2 : node; value : Expr.t }
  | Inductor of { name : string; n1 : node; n2 : node; value : Expr.t }
  | Vsource of { name : string; np : node; nn : node; dc : Expr.t; ac : float }
  | Isource of { name : string; np : node; nn : node; dc : Expr.t; ac : float }
  | Vcvs of { name : string; np : node; nn : node; ncp : node; ncn : node; gain : Expr.t }
  | Vccs of { name : string; np : node; nn : node; ncp : node; ncn : node; gm : Expr.t }
  | Cccs of { name : string; np : node; nn : node; vsrc : string; gain : Expr.t }
  | Ccvs of { name : string; np : node; nn : node; vsrc : string; r : Expr.t }
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      b : node;
      model : string;
      w : Expr.t;
      l : Expr.t;
      mult : Expr.t;
    }
  | Bjt of { name : string; c : node; b : node; e : node; model : string; area : Expr.t }

type t = {
  node_names : string array;  (** index -> name; index 0 is ground *)
  elements : element array;
}

let node_count t = Array.length t.node_names
let element_count t = Array.length t.elements

let element_name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vcvs { name; _ }
  | Vccs { name; _ }
  | Cccs { name; _ }
  | Ccvs { name; _ }
  | Mosfet { name; _ }
  | Bjt { name; _ } ->
      name

let find_node t name =
  let rec scan k =
    if k >= Array.length t.node_names then raise Not_found
    else if t.node_names.(k) = name then k
    else scan (k + 1)
  in
  scan 0

let find_element t name =
  let rec scan k =
    if k >= Array.length t.elements then raise Not_found
    else if element_name t.elements.(k) = name then t.elements.(k)
    else scan (k + 1)
  in
  scan 0

let pp ppf t =
  Format.fprintf ppf "circuit: %d nodes, %d elements@\n" (node_count t) (element_count t);
  Array.iteri
    (fun k n -> if k > 0 then Format.fprintf ppf "  node %d = %s@\n" k n)
    t.node_names;
  Array.iter (fun e -> Format.fprintf ppf "  %s@\n" (element_name e)) t.elements
