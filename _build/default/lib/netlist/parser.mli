(** Parser for the ASTRX input language — a SPICE-flavoured, line-oriented
    format. ['*'] starts a comment line, ['+'] continues the previous card,
    tokens are case-insensitive, quoted strings (['...']) hold expressions.

    Cards:
    {v
    <elements>                      r/c/l/v/i/e/g/f/h/m/q/x, SPICE syntax
    .subckt name p1 p2 ... / .ends
    .model name nmos|pmos|npn|pnp level=1|3|bsim [k=v ...]
    .process name                   built-in process providing models
    .param name=expr
    .var name min=.. max=.. [grid=log|lin] [steps=n] [init=..]
    .jig name / .endjig             test-jig body; may contain .pz cards
    .pz tfname v(out[,outn]) srcname
    .bias / .endbias                bias-circuit body
    .obj name 'expr' good=.. bad=..
    .spec name 'expr' good=.. bad=..
    .devregion elemname sat|linear|off|any
    .title text
    v} *)

exception Error of int * string
(** Parse error with 1-based logical line number. *)

(** [parse_problem src] parses a whole problem description. *)
val parse_problem : string -> Ast.problem

(** [parse_elements src] parses a bare list of element cards (used by tests
    and by programmatic circuit construction). *)
val parse_elements : string -> Ast.element list
