type t =
  | Const of float
  | Ref of string list
  | Call of string * t list
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t

exception Parse_error of string

(* --- Tokenizer --- *)

type token = Tnum of float | Tident of string | Tpunct of char | Tend

(* Node names with '+'/'-' (out+, in-) never appear in arithmetic
   expressions — they are confined to netlist cards, which have their own
   tokenizer — so identifiers here are plain C-like names. *)
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if (c >= '0' && c <= '9') || (c = '.' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      (* Numeric literal with optional SPICE suffix: consume digits, dots,
         exponent and trailing letters. *)
      let j = ref !i in
      let seen_e = ref false in
      let continue_ = ref true in
      while !continue_ && !j < n do
        let d = s.[!j] in
        if (d >= '0' && d <= '9') || d = '.' then incr j
        else if (d = 'e' || d = 'E') && not !seen_e then begin
          (* Only an exponent if followed by digit or sign+digit. *)
          if
            !j + 1 < n
            && (s.[!j + 1] >= '0' && s.[!j + 1] <= '9'
               || ((s.[!j + 1] = '+' || s.[!j + 1] = '-')
                  && !j + 2 < n
                  && s.[!j + 2] >= '0'
                  && s.[!j + 2] <= '9'))
          then begin
            seen_e := true;
            j := !j + 2
          end
          else incr j (* suffix letter like the e of Meg *)
        end
        else if (d >= 'a' && d <= 'z') || (d >= 'A' && d <= 'Z') then incr j
        else continue_ := false
      done;
      let lit = String.sub s !i (!j - !i) in
      (match Units.parse lit with
      | Ok v -> push (Tnum v)
      | Error e -> raise (Parse_error e));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      push (Tident (String.sub s !i (!j - !i)));
      i := !j
    end
    else
      match c with
      | '+' | '-' | '*' | '/' | '^' | '(' | ')' | ',' | '.' ->
          push (Tpunct c);
          incr i
      | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C in %S" c s))
  done;
  push Tend;
  List.rev !toks

(* --- Recursive-descent parser --- *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> Tend | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_punct st c =
  match peek st with
  | Tpunct d when d = c -> advance st
  | _ -> raise (Parse_error (Printf.sprintf "expected %C" c))

let rec parse_expr st =
  let lhs = ref (parse_term st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Tpunct '+' ->
        advance st;
        lhs := Add (!lhs, parse_term st)
    | Tpunct '-' ->
        advance st;
        lhs := Sub (!lhs, parse_term st)
    | Tnum _ | Tident _ | Tpunct _ | Tend -> continue_ := false
  done;
  !lhs

and parse_term st =
  let lhs = ref (parse_factor st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Tpunct '*' ->
        advance st;
        lhs := Mul (!lhs, parse_factor st)
    | Tpunct '/' ->
        advance st;
        lhs := Div (!lhs, parse_factor st)
    | Tnum _ | Tident _ | Tpunct _ | Tend -> continue_ := false
  done;
  !lhs

and parse_factor st =
  let base = parse_atom st in
  match peek st with
  | Tpunct '^' ->
      advance st;
      Pow (base, parse_factor st)
  | Tnum _ | Tident _ | Tpunct _ | Tend -> base

and parse_atom st =
  match peek st with
  | Tnum v ->
      advance st;
      Const v
  | Tpunct '-' ->
      advance st;
      Neg (parse_atom st)
  | Tpunct '+' ->
      advance st;
      parse_atom st
  | Tpunct '(' ->
      advance st;
      let e = parse_expr st in
      expect_punct st ')';
      e
  | Tident name -> begin
      advance st;
      match peek st with
      | Tpunct '(' ->
          advance st;
          let args = ref [] in
          (match peek st with
          | Tpunct ')' -> advance st
          | Tnum _ | Tident _ | Tpunct _ | Tend ->
              let rec loop () =
                args := parse_expr st :: !args;
                match peek st with
                | Tpunct ',' ->
                    advance st;
                    loop ()
                | Tpunct ')' -> advance st
                | Tnum _ | Tident _ | Tpunct _ | Tend ->
                    raise (Parse_error "expected ',' or ')' in call")
              in
              loop ());
          Call (String.lowercase_ascii name, List.rev !args)
      | Tpunct '.' ->
          let path = ref [ name ] in
          while peek st = Tpunct '.' do
            advance st;
            match peek st with
            | Tident part ->
                advance st;
                path := part :: !path
            | Tnum _ | Tpunct _ | Tend -> raise (Parse_error "expected identifier after '.'")
          done;
          Ref (List.rev !path)
      | Tnum _ | Tident _ | Tpunct _ | Tend -> Ref [ name ]
    end
  | Tpunct c -> raise (Parse_error (Printf.sprintf "unexpected %C" c))
  | Tend -> raise (Parse_error "unexpected end of expression")

let parse s =
  let st = { toks = tokenize s } in
  let e = parse_expr st in
  match peek st with
  | Tend -> e
  | Tnum _ | Tident _ | Tpunct _ ->
      raise (Parse_error (Printf.sprintf "trailing garbage in expression %S" s))

(* --- Evaluation --- *)

type env = { lookup : string list -> float; call : string -> arg list -> float }
and arg = Name of string | Num of float

exception Eval_error of string

let rec eval env e =
  match e with
  | Const v -> v
  | Ref path -> begin
      try env.lookup path
      with Not_found -> raise (Eval_error ("unknown reference " ^ String.concat "." path))
    end
  | Call (name, args) ->
      let to_arg a =
        match a with
        | Ref [ single ] -> begin
            (* A bare identifier argument may be a symbolic name (a transfer
               function or jig name) or a variable; prefer the variable if it
               resolves, otherwise pass the name through. *)
            try Num (env.lookup [ single ]) with Not_found -> Name single
          end
        | Const _ | Ref _ | Call _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Pow _ ->
            Num (eval env a)
      in
      env.call name (List.map to_arg args)
  | Neg a -> -.eval env a
  | Add (a, b) -> eval env a +. eval env b
  | Sub (a, b) -> eval env a -. eval env b
  | Mul (a, b) -> eval env a *. eval env b
  | Div (a, b) ->
      let d = eval env b in
      if d = 0.0 then raise (Eval_error "division by zero") else eval env a /. d
  | Pow (a, b) -> Float.pow (eval env a) (eval env b)

let rec subst map e =
  match e with
  | Const _ -> e
  | Ref [ x ] -> ( match List.assoc_opt x map with Some r -> r | None -> e)
  | Ref _ -> e
  | Call (name, args) -> Call (name, List.map (subst map) args)
  | Neg a -> Neg (subst map a)
  | Add (a, b) -> Add (subst map a, subst map b)
  | Sub (a, b) -> Sub (subst map a, subst map b)
  | Mul (a, b) -> Mul (subst map a, subst map b)
  | Div (a, b) -> Div (subst map a, subst map b)
  | Pow (a, b) -> Pow (subst map a, subst map b)

let rec refs e =
  match e with
  | Const _ -> []
  | Ref p -> [ p ]
  | Call (_, args) -> List.concat_map refs args
  | Neg a -> refs a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Pow (a, b) -> refs a @ refs b

let rec calls e =
  match e with
  | Const _ | Ref _ -> []
  | Call (name, args) -> (name, args) :: List.concat_map calls args
  | Neg a -> calls a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Pow (a, b) -> calls a @ calls b

let rec size e =
  match e with
  | Const _ | Ref _ -> 1
  | Call (_, args) -> 1 + List.fold_left (fun acc a -> acc + size a) 0 args
  | Neg a -> 1 + size a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Pow (a, b) -> 1 + size a + size b

let rec pp ppf e =
  match e with
  | Const v -> Format.fprintf ppf "%g" v
  | Ref p -> Format.fprintf ppf "%s" (String.concat "." p)
  | Call (name, args) ->
      Format.fprintf ppf "%s(" name;
      List.iteri (fun k a -> Format.fprintf ppf (if k = 0 then "%a" else ", %a") pp a) args;
      Format.fprintf ppf ")"
  | Neg a -> Format.fprintf ppf "-(%a)" pp a
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Pow (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e
let const v = Const v
let var name = Ref [ name ]
