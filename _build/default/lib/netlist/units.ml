let suffix_value s =
  match String.lowercase_ascii s with
  | "t" -> Some 1e12
  | "g" -> Some 1e9
  | "meg" -> Some 1e6
  | "k" -> Some 1e3
  | "m" -> Some 1e-3
  | "u" -> Some 1e-6
  | "n" -> Some 1e-9
  | "p" -> Some 1e-12
  | "f" -> Some 1e-15
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_number s =
  let n = String.length s in
  if n = 0 then false
  else if is_digit s.[0] then true
  else if s.[0] = '+' || s.[0] = '-' || s.[0] = '.' then
    n > 1 && (is_digit s.[1] || (s.[1] = '.' && n > 2 && is_digit s.[2]))
  else false

let parse s =
  let n = String.length s in
  if n = 0 then Error "empty numeric literal"
  else begin
    (* Scan the leading float part: sign, digits, dot, exponent. *)
    let i = ref 0 in
    if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
    let digits_start = !i in
    while !i < n && is_digit s.[!i] do
      incr i
    done;
    if !i < n && s.[!i] = '.' then begin
      incr i;
      while !i < n && is_digit s.[!i] do
        incr i
      done
    end;
    if !i = digits_start then Error (Printf.sprintf "malformed number %S" s)
    else begin
      (* Exponent is only consumed when followed by digits; a bare 'e' would
         otherwise eat a suffix letter. *)
      (if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
         let j = ref (!i + 1) in
         if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
         let exp_digits = ref 0 in
         while !j < n && is_digit s.[!j] do
           incr j;
           incr exp_digits
         done;
         if !exp_digits > 0 then i := !j
       end);
      let base = float_of_string (String.sub s 0 !i) in
      let rest = String.sub s !i (n - !i) in
      let rest_l = String.lowercase_ascii rest in
      if rest = "" then Ok base
      else if String.length rest_l >= 3 && String.sub rest_l 0 3 = "meg" then Ok (base *. 1e6)
      else
        match suffix_value (String.sub rest_l 0 1) with
        | Some m -> Ok (base *. m)
        | None ->
            (* Pure unit letters like "F" in "10F"? 'f' is femto in SPICE, so
               any unrecognized leading letter is an error. *)
            Error (Printf.sprintf "unknown suffix %S in %S" rest s)
    end
  end

let parse_exn s =
  match parse s with Ok v -> v | Error e -> failwith ("Units.parse: " ^ e)

let format x =
  if x = 0.0 then "0"
  else begin
    let ax = Float.abs x in
    let pick =
      [ (1e12, "t"); (1e9, "g"); (1e6, "meg"); (1e3, "k"); (1.0, ""); (1e-3, "m");
        (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]
    in
    let rec choose = function
      | [] -> Printf.sprintf "%g" x
      | (scale, suffix) :: rest ->
          if ax >= scale then Printf.sprintf "%g%s" (x /. scale) suffix else choose rest
    in
    choose pick
  end
