exception Error of string

let is_ground name = name = "0" || name = "gnd"

type builder = {
  mutable names : string list;  (** reversed, excluding ground *)
  tbl : (string, int) Hashtbl.t;
  mutable elements : Circuit.element list;  (** reversed *)
}

let intern b name =
  if is_ground name then 0
  else
    match Hashtbl.find_opt b.tbl name with
    | Some k -> k
    | None ->
        let k = Hashtbl.length b.tbl + 1 in
        Hashtbl.add b.tbl name k;
        b.names <- name :: b.names;
        k

(* [prefix] is "" at top level, "xamp." inside instance xamp. [port_map]
   maps a subcircuit's formal port names to already-resolved parent node
   names. [params] substitutes instance parameters into expressions. *)
let rec expand b ~subckts ~prefix ~port_map ~params ~depth body =
  if depth > 20 then raise (Error "subcircuit nesting too deep (recursive subckt?)");
  let resolve_node n =
    if is_ground n then "0"
    else
      match List.assoc_opt n port_map with
      | Some parent -> parent
      | None -> prefix ^ n
  in
  let node n = intern b (resolve_node n) in
  let ename n = prefix ^ n in
  let sub e = Expr.subst params e in
  let add e = b.elements <- e :: b.elements in
  let handle (el : Ast.element) =
    match el with
    | Ast.Resistor { name; n1; n2; value } ->
        add (Circuit.Resistor { name = ename name; n1 = node n1; n2 = node n2; value = sub value })
    | Ast.Capacitor { name; n1; n2; value } ->
        add
          (Circuit.Capacitor { name = ename name; n1 = node n1; n2 = node n2; value = sub value })
    | Ast.Inductor { name; n1; n2; value } ->
        add (Circuit.Inductor { name = ename name; n1 = node n1; n2 = node n2; value = sub value })
    | Ast.Vsource { name; np; nn; dc; ac } ->
        add (Circuit.Vsource { name = ename name; np = node np; nn = node nn; dc = sub dc; ac })
    | Ast.Isource { name; np; nn; dc; ac } ->
        add (Circuit.Isource { name = ename name; np = node np; nn = node nn; dc = sub dc; ac })
    | Ast.Vcvs { name; np; nn; ncp; ncn; gain } ->
        add
          (Circuit.Vcvs
             {
               name = ename name;
               np = node np;
               nn = node nn;
               ncp = node ncp;
               ncn = node ncn;
               gain = sub gain;
             })
    | Ast.Vccs { name; np; nn; ncp; ncn; gm } ->
        add
          (Circuit.Vccs
             {
               name = ename name;
               np = node np;
               nn = node nn;
               ncp = node ncp;
               ncn = node ncn;
               gm = sub gm;
             })
    | Ast.Cccs { name; np; nn; vsrc; gain } ->
        add
          (Circuit.Cccs
             { name = ename name; np = node np; nn = node nn; vsrc = ename vsrc; gain = sub gain })
    | Ast.Ccvs { name; np; nn; vsrc; r } ->
        add
          (Circuit.Ccvs
             { name = ename name; np = node np; nn = node nn; vsrc = ename vsrc; r = sub r })
    | Ast.Mosfet { name; d; g; s; b = nb; model; w; l; mult } ->
        add
          (Circuit.Mosfet
             {
               name = ename name;
               d = node d;
               g = node g;
               s = node s;
               b = node nb;
               model;
               w = sub w;
               l = sub l;
               mult = sub mult;
             })
    | Ast.Bjt { name; c; b = nb; e; model; area } ->
        add
          (Circuit.Bjt
             {
               name = ename name;
               c = node c;
               b = node nb;
               e = node e;
               model;
               area = sub area;
             })
    | Ast.Subckt_inst { name; nodes; subckt; params = inst_params } -> begin
        match List.find_opt (fun s -> s.Ast.sub_name = subckt) subckts with
        | None -> raise (Error ("unknown subcircuit " ^ subckt))
        | Some def ->
            if List.length def.ports <> List.length nodes then
              raise
                (Error
                   (Printf.sprintf "instance %s: %d nodes given, subckt %s has %d ports"
                      (ename name) (List.length nodes) subckt (List.length def.ports)));
            let port_map' = List.combine def.ports (List.map resolve_node nodes) in
            let params' = List.map (fun (k, e) -> (k, sub e)) inst_params in
            expand b ~subckts
              ~prefix:(ename name ^ ".")
              ~port_map:port_map' ~params:params' ~depth:(depth + 1) def.body
      end
  in
  List.iter handle body

let flatten ~subckts body =
  let b = { names = []; tbl = Hashtbl.create 64; elements = [] } in
  expand b ~subckts ~prefix:"" ~port_map:[] ~params:[] ~depth:0 body;
  let names = Array.of_list ("0" :: List.rev b.names) in
  { Circuit.node_names = names; elements = Array.of_list (List.rev b.elements) }
