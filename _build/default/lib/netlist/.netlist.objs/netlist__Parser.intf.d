lib/netlist/parser.mli: Ast
