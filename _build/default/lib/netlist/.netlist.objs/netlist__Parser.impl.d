lib/netlist/parser.ml: Ast Buffer Char Expr List Option Printf String Units
