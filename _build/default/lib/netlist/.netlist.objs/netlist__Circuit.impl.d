lib/netlist/circuit.ml: Array Expr Format
