lib/netlist/elab.mli: Ast Circuit
