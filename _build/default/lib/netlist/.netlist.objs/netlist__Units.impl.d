lib/netlist/units.ml: Float Printf String
