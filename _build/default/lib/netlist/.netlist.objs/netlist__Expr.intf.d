lib/netlist/expr.mli: Format
