lib/netlist/expr.ml: Float Format List Printf String Units
