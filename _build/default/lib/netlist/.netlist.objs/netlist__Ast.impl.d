lib/netlist/ast.ml: Expr
