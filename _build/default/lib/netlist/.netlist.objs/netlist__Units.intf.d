lib/netlist/units.mli:
