lib/netlist/elab.ml: Array Ast Circuit Expr Hashtbl List Printf
