(** SPICE-style numeric literals: a float with an optional engineering
    suffix, e.g. [1Meg] = 1e6, [2.5u] = 2.5e-6, [100f] = 1e-13.

    Suffixes (case-insensitive): f p n u m k meg g t. Any trailing unit
    letters after the suffix are ignored, as in SPICE ([10pF], [5kOhm]). *)

(** [parse s] parses a literal. *)
val parse : string -> (float, string) result

(** [parse_exn s] is [parse], raising [Failure] on malformed input. *)
val parse_exn : string -> float

(** [is_number s] is true when [s] starts like a numeric literal (digit,
    sign, or dot followed by digit). *)
val is_number : string -> bool

(** [format x] renders with an engineering suffix, e.g. [2.5e-6] ->
    ["2.5u"]. *)
val format : float -> string
