(* Tests for the two prior-approach baselines. *)

let test_eq_sizer_produces_design () =
  let d = Baselines.Eq_sizer.size ~ugf_target:50e6 ~sr_target:10e6 ~cl:1e-12 ~vdd:5.0 in
  (* All sizes positive and inside plausible IC ranges. *)
  List.iter
    (fun (name, v) ->
      if v <= 0.0 then Alcotest.failf "%s nonpositive" name;
      if name <> "ib" && (v < 1e-6 || v > 1e-3) then Alcotest.failf "%s out of range: %g" name v)
    d.Baselines.Eq_sizer.sizes;
  (* The tail current must equal SR * Cl by construction. *)
  Alcotest.(check (float 1e-9)) "tail current" 10e-6 (List.assoc "ib" d.sizes);
  (* Predicted UGF is the target. *)
  Alcotest.(check (float 1.0)) "predicted ugf" 50e6 (List.assoc "ugf" d.predicted)

let test_eq_sizer_prediction_error_is_large () =
  (* The paper's Fig. 3 story: simple square-law equations mispredict a
     short-channel process. The worst relative error must be substantial
     (tens of percent), and at least one prediction should be off by >20%. *)
  match Baselines.Eq_sizer.prediction_error () with
  | Error e -> Alcotest.failf "baseline failed: %s" e
  | Ok rows ->
      Alcotest.(check bool) "several specs compared" true (List.length rows >= 4);
      let worst = List.fold_left (fun acc (_, _, _, rel) -> Float.max acc rel) 0.0 rows in
      Alcotest.(check bool) "worst error > 20%" true (worst > 0.2)

let test_local_opt_runs () =
  match Core.Compile.compile_source Suite.Simple_ota.source with
  | Error e -> Alcotest.fail e
  | Ok p ->
      let rng = Anneal.Rng.create 31 in
      let r = Baselines.Local_opt.optimize ~max_evals:60 p ~rng in
      Alcotest.(check bool) "improves on start" true (r.final_cost <= r.start_cost);
      Alcotest.(check bool) "used its budget" true (r.evals >= 40)

let () =
  Alcotest.run "baselines"
    [
      ( "eq-sizer",
        [
          Alcotest.test_case "design procedure" `Quick test_eq_sizer_produces_design;
          Alcotest.test_case "prediction error" `Slow test_eq_sizer_prediction_error_is_large;
        ] );
      ("local-opt", [ Alcotest.test_case "nelder-mead runs" `Slow test_local_opt_runs ]);
    ]
