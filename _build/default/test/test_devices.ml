(* Tests for the encapsulated device evaluators: physical sanity, smooth
   derivatives, polarity and terminal-swap symmetry, junction models. *)

let nmos level =
  Option.get (Devices.Process.mos ~process:"p1u2" ~level ~pol:Devices.Sig.N)

let pmos level =
  Option.get (Devices.Process.mos ~process:"p1u2" ~level ~pol:Devices.Sig.P)

let eval_n ?(level = "3") ~vd ~vg ~vs ~vb () =
  (Devices.Mos_common.make (nmos level)) ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd ~vg ~vs ~vb

let test_mos_regions () =
  let sat = eval_n ~vd:3.0 ~vg:2.0 ~vs:0.0 ~vb:0.0 () in
  Alcotest.(check string) "sat" "sat" (Devices.Sig.region_to_string sat.Devices.Sig.region);
  let lin = eval_n ~vd:0.1 ~vg:3.0 ~vs:0.0 ~vb:0.0 () in
  Alcotest.(check string) "linear" "linear" (Devices.Sig.region_to_string lin.Devices.Sig.region);
  let off = eval_n ~vd:3.0 ~vg:0.0 ~vs:0.0 ~vb:0.0 () in
  Alcotest.(check string) "off" "off" (Devices.Sig.region_to_string off.Devices.Sig.region);
  Alcotest.(check bool) "off current tiny" true (Float.abs off.Devices.Sig.id_ < 1e-9)

let test_mos_monotonic_vgs () =
  (* Drain current increases with gate drive across the full range —
     smooth subthreshold blending must not break monotonicity. *)
  let prev = ref neg_infinity in
  let ok = ref true in
  for k = 0 to 60 do
    let vg = 0.0 +. (float_of_int k /. 60.0 *. 4.0) in
    let op = eval_n ~vd:2.5 ~vg ~vs:0.0 ~vb:0.0 () in
    if op.Devices.Sig.id_ < !prev -. 1e-15 then ok := false;
    prev := op.Devices.Sig.id_
  done;
  Alcotest.(check bool) "monotone in vgs" true !ok

let prop_mos_gm_consistent =
  (* gm reported by the evaluator equals the numerical derivative of id
     with a different (smaller) step: consistency of the smooth model. *)
  QCheck.Test.make ~name:"mos: gm = dId/dVg" ~count:150
    QCheck.(
      quad (float_range 0.5 4.5) (float_range 0.8 3.5) (float_range 0.0 1.0)
        (int_range 0 2))
    (fun (vd, vg, vs_frac, lvl_idx) ->
      let level = [| "1"; "3"; "bsim" |].(lvl_idx) in
      let vs = vs_frac *. 0.5 in
      let ev = Devices.Mos_common.make (nmos level) in
      let op = ev ~w:20e-6 ~l:2e-6 ~m:1.0 ~vd ~vg ~vs ~vb:0.0 in
      let h = 1e-7 in
      let idp = (ev ~w:20e-6 ~l:2e-6 ~m:1.0 ~vd ~vg:(vg +. h) ~vs ~vb:0.0).Devices.Sig.id_ in
      let idm = (ev ~w:20e-6 ~l:2e-6 ~m:1.0 ~vd ~vg:(vg -. h) ~vs ~vb:0.0).Devices.Sig.id_ in
      let fd = (idp -. idm) /. (2.0 *. h) in
      Float.abs (fd -. op.Devices.Sig.gm) <= 1e-4 *. (Float.abs fd +. 1e-9))

let test_mos_polarity_symmetry () =
  (* A PMOS with mirrored voltages carries exactly minus the NMOS current
     when its parameters mirror the NMOS ones. *)
  let n = nmos "3" in
  let p = { (pmos "3") with Devices.Mos_params.vto = n.Devices.Mos_params.vto; kp = n.kp; gamma = n.gamma;
            lambda = n.lambda; theta = n.theta; vmax = n.vmax; eta = n.eta } in
  let evn = Devices.Mos_common.make n and evp = Devices.Mos_common.make p in
  let opn = evn ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:2.0 ~vg:1.5 ~vs:0.0 ~vb:0.0 in
  let opp = evp ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:(-2.0) ~vg:(-1.5) ~vs:0.0 ~vb:0.0 in
  Alcotest.(check (float 1e-12)) "mirrored current" opn.Devices.Sig.id_ (-.opp.Devices.Sig.id_);
  (* gm is the Jacobian entry in the external frame: equal for both. *)
  Alcotest.(check (float 1e-9)) "gm equal" opn.Devices.Sig.gm opp.Devices.Sig.gm

let test_mos_source_drain_swap () =
  (* The MOS is symmetric: swapping d and s negates the current. *)
  let ev = Devices.Mos_common.make (nmos "3") in
  let fwd = ev ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:1.0 ~vg:3.0 ~vs:0.2 ~vb:0.0 in
  let rev = ev ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:0.2 ~vg:3.0 ~vs:1.0 ~vb:0.0 in
  Alcotest.(check (float 1e-12)) "swap negates" fwd.Devices.Sig.id_ (-.rev.Devices.Sig.id_)

let test_mos_continuity_at_swap () =
  (* No current jump across vds = 0. *)
  let ev = Devices.Mos_common.make (nmos "bsim") in
  let at vd = (ev ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd ~vg:2.0 ~vs:0.0 ~vb:0.0).Devices.Sig.id_ in
  let eps = 1e-9 in
  Alcotest.(check bool) "continuous at 0" true (Float.abs (at eps -. at (-.eps)) < 1e-9)

let test_mos_body_effect () =
  (* Reverse body bias raises vth. *)
  let ev = Devices.Mos_common.make (nmos "3") in
  let op0 = ev ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:2.0 ~vg:1.5 ~vs:0.0 ~vb:0.0 in
  let oprb = ev ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:2.0 ~vg:1.5 ~vs:0.0 ~vb:(-2.0) in
  Alcotest.(check bool) "vth rises" true (oprb.Devices.Sig.vth > op0.Devices.Sig.vth);
  Alcotest.(check bool) "current falls" true (oprb.Devices.Sig.id_ < op0.Devices.Sig.id_)

let test_mos_models_differ () =
  (* The model-comparison experiment requires the three models to predict
     different currents at the same bias and geometry. *)
  let id level =
    (Devices.Mos_common.make (nmos level)) ~w:10e-6 ~l:1.2e-6 ~m:1.0 ~vd:2.5 ~vg:2.0 ~vs:0.0
      ~vb:0.0
  in
  let i1 = (id "1").Devices.Sig.id_ in
  let i3 = (id "3").Devices.Sig.id_ in
  let ib = (id "bsim").Devices.Sig.id_ in
  let rel a b = Float.abs (a -. b) /. Float.max (Float.abs a) (Float.abs b) in
  Alcotest.(check bool) "1 vs 3 differ" true (rel i1 i3 > 0.05);
  Alcotest.(check bool) "3 vs bsim differ" true (rel i3 ib > 0.05)

let test_mos_short_channel () =
  (* Shorter channel -> more current per W/L square and lower vth (BSIM). *)
  let ev = Devices.Mos_common.make (nmos "bsim") in
  let long_ = ev ~w:20e-6 ~l:10e-6 ~m:1.0 ~vd:2.5 ~vg:2.0 ~vs:0.0 ~vb:0.0 in
  let short_ = ev ~w:2.4e-6 ~l:1.2e-6 ~m:1.0 ~vd:2.5 ~vg:2.0 ~vs:0.0 ~vb:0.0 in
  (* same W/L ratio *)
  Alcotest.(check bool) "short channel vth lower" true
    (short_.Devices.Sig.vth < long_.Devices.Sig.vth)

let test_mos_caps_positive_and_regionwise () =
  let sat = eval_n ~vd:3.0 ~vg:2.0 ~vs:0.0 ~vb:0.0 () in
  let lin = eval_n ~vd:0.05 ~vg:3.0 ~vs:0.0 ~vb:0.0 () in
  let open Devices.Sig in
  List.iter
    (fun (label, v) -> if v < 0.0 then Alcotest.failf "%s negative" label)
    [ ("cgs", sat.cgs); ("cgd", sat.cgd); ("cgb", sat.cgb); ("cbd", sat.cbd); ("cbs", sat.cbs) ];
  Alcotest.(check bool) "sat: cgs >> cgd" true (sat.cgs > 2.0 *. sat.cgd);
  Alcotest.(check bool) "linear: cgs ~ cgd" true
    (Float.abs (lin.cgs -. lin.cgd) < 0.3 *. lin.cgs)

let test_junction_cap_clamping () =
  let c0 = 1e-12 and pb = 0.8 and mj = 0.5 in
  let c_rev = Devices.Mos_common.junction_cap c0 pb mj (-2.0) in
  let c_zero = Devices.Mos_common.junction_cap c0 pb mj 0.0 in
  let c_fwd = Devices.Mos_common.junction_cap c0 pb mj 0.79 in
  Alcotest.(check bool) "reverse smaller" true (c_rev < c_zero);
  Alcotest.(check (float 1e-18)) "zero bias" c0 c_zero;
  Alcotest.(check bool) "forward finite" true (Float.is_finite c_fwd && c_fwd > c0)

(* --- BJT --- *)

let test_bjt_forward_active () =
  let ev = Devices.Bjt.make Devices.Bjt.default_npn in
  let op = ev ~area:1.0 ~vc:3.0 ~vb:0.7 ~ve:0.0 in
  let open Devices.Sig in
  Alcotest.(check bool) "ic positive" true (op.ic > 0.0);
  Alcotest.(check bool) "beta plausible" true (op.ic /. op.ib > 20.0 && op.ic /. op.ib < 200.0);
  (* gm = ic/vt for an ideal BJT *)
  let gm_ideal = op.ic /. 0.02585 in
  Alcotest.(check bool) "gm near ic/vt" true (Float.abs (op.bjt_gm -. gm_ideal) < 0.2 *. gm_ideal)

let test_bjt_early_effect () =
  let ev = Devices.Bjt.make Devices.Bjt.default_npn in
  let lo = ev ~area:1.0 ~vc:1.0 ~vb:0.7 ~ve:0.0 in
  let hi = ev ~area:1.0 ~vc:4.0 ~vb:0.7 ~ve:0.0 in
  Alcotest.(check bool) "ic grows with vce" true (hi.Devices.Sig.ic > lo.Devices.Sig.ic);
  Alcotest.(check bool) "go positive" true (lo.Devices.Sig.go > 0.0)

let test_bjt_pnp_mirror () =
  let pnp = { Devices.Bjt.default_npn with Devices.Bjt.pol = Devices.Sig.P } in
  let ev = Devices.Bjt.make pnp in
  let op = ev ~area:1.0 ~vc:(-3.0) ~vb:(-0.7) ~ve:0.0 in
  Alcotest.(check bool) "pnp ic negative" true (op.Devices.Sig.ic < 0.0)

let test_bjt_exp_overflow_protection () =
  let ev = Devices.Bjt.make Devices.Bjt.default_npn in
  let op = ev ~area:1.0 ~vc:5.0 ~vb:5.0 ~ve:0.0 in
  Alcotest.(check bool) "finite at vbe=5" true
    (Float.is_finite op.Devices.Sig.ic && Float.is_finite op.Devices.Sig.bjt_gm)

let test_bjt_area_scaling () =
  let ev = Devices.Bjt.make Devices.Bjt.default_npn in
  let a1 = ev ~area:1.0 ~vc:3.0 ~vb:0.65 ~ve:0.0 in
  let a4 = ev ~area:4.0 ~vc:3.0 ~vb:0.65 ~ve:0.0 in
  let ratio = a4.Devices.Sig.ic /. a1.Devices.Sig.ic in
  Alcotest.(check bool) "ic scales ~4x with area" true (ratio > 3.5 && ratio < 4.5)

(* --- Registry --- *)

let test_registry_process_names () =
  let r = Result.get_ok (Devices.Registry.build ~process:"p1u2" []) in
  List.iter
    (fun n ->
      match Devices.Registry.find r n with
      | Some _ -> ()
      | None -> Alcotest.failf "missing %s" n)
    [ "nmos"; "pmos"; "nmos_1"; "pmos_1"; "nmos_bsim"; "pmos_bsim"; "npn"; "pnp" ]

let test_registry_decl_override () =
  let r =
    Result.get_ok
      (Devices.Registry.build ~process:"p1u2"
         [
           {
             Devices.Registry.decl_name = "mydev";
             decl_kind = "nmos";
             decl_level = "1";
             decl_params = [ ("vto", 1.5) ];
           };
         ])
  in
  match Devices.Registry.find r "mydev" with
  | Some (Devices.Sig.Mos { eval; _ }) ->
      let op = eval ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:2.0 ~vg:1.2 ~vs:0.0 ~vb:0.0 in
      (* vgs 1.2 < vto 1.5 -> off *)
      Alcotest.(check bool) "custom vto honored" true (Float.abs op.Devices.Sig.id_ < 1e-8)
  | Some (Devices.Sig.Bjt _) | None -> Alcotest.fail "mydev missing"

let test_registry_errors () =
  (match
     Devices.Registry.build
       [ { Devices.Registry.decl_name = "x"; decl_kind = "nmos"; decl_level = "9"; decl_params = [] } ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad level accepted");
  (match
     Devices.Registry.build
       [ { Devices.Registry.decl_name = "x"; decl_kind = "nmos"; decl_level = "1"; decl_params = [ ("zap", 1.0) ] } ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad param accepted");
  match
    Devices.Registry.build
      [ { Devices.Registry.decl_name = "x"; decl_kind = "weird"; decl_level = "1"; decl_params = [] } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad kind accepted"


let test_junction_exp_clamp_continuity () =
  (* The linearized exponential joins the true one continuously at 40 vt. *)
  let vt = Devices.Mos_common.vt_thermal in
  let ev = Devices.Mos_common.make (nmos "3") in
  (* Drive the bulk-source junction just below/above the clamp knee. *)
  let ibs vb =
    (ev ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:2.0 ~vg:0.0 ~vs:0.0 ~vb).Devices.Sig.ibs_
  in
  let below = ibs (40.0 *. vt -. 1e-6) and above = ibs (40.0 *. vt +. 1e-6) in
  Alcotest.(check bool) "continuous at the knee" true
    (Float.abs (above -. below) < 1e-3 *. Float.abs below)

let test_mos_gds_positive_in_sat () =
  let op = eval_n ~vd:3.0 ~vg:2.0 ~vs:0.0 ~vb:0.0 () in
  Alcotest.(check bool) "gds > 0" true (op.Devices.Sig.gds > 0.0);
  Alcotest.(check bool) "gm >> gds" true (op.Devices.Sig.gm > 5.0 *. op.Devices.Sig.gds)

let () =
  Alcotest.run "devices"
    [
      ( "mos",
        [
          Alcotest.test_case "regions" `Quick test_mos_regions;
          Alcotest.test_case "monotone vgs" `Quick test_mos_monotonic_vgs;
          QCheck_alcotest.to_alcotest prop_mos_gm_consistent;
          Alcotest.test_case "polarity symmetry" `Quick test_mos_polarity_symmetry;
          Alcotest.test_case "source-drain swap" `Quick test_mos_source_drain_swap;
          Alcotest.test_case "continuity at vds=0" `Quick test_mos_continuity_at_swap;
          Alcotest.test_case "body effect" `Quick test_mos_body_effect;
          Alcotest.test_case "models differ" `Quick test_mos_models_differ;
          Alcotest.test_case "short channel" `Quick test_mos_short_channel;
          Alcotest.test_case "capacitances" `Quick test_mos_caps_positive_and_regionwise;
          Alcotest.test_case "junction cap clamp" `Quick test_junction_cap_clamping;
          Alcotest.test_case "junction exp clamp" `Quick test_junction_exp_clamp_continuity;
          Alcotest.test_case "gds in saturation" `Quick test_mos_gds_positive_in_sat;
        ] );
      ( "bjt",
        [
          Alcotest.test_case "forward active" `Quick test_bjt_forward_active;
          Alcotest.test_case "early effect" `Quick test_bjt_early_effect;
          Alcotest.test_case "pnp mirror" `Quick test_bjt_pnp_mirror;
          Alcotest.test_case "exp overflow" `Quick test_bjt_exp_overflow_protection;
          Alcotest.test_case "area scaling" `Quick test_bjt_area_scaling;
        ] );
      ( "registry",
        [
          Alcotest.test_case "process names" `Quick test_registry_process_names;
          Alcotest.test_case "decl override" `Quick test_registry_decl_override;
          Alcotest.test_case "errors" `Quick test_registry_errors;
        ] );
    ]
