(* Tests for the MNA reference simulator: DC, AC, transient. *)

let value e =
  Netlist.Expr.eval
    { Netlist.Expr.lookup = (fun _ -> raise Not_found); call = (fun _ _ -> nan) }
    e

let registry = Result.get_ok (Devices.Registry.build ~process:"p1u2" [])

let circuit src = Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements src)

let solve src =
  match Mna.Dc.solve ~value ~registry (circuit src) with
  | Ok sol -> sol
  | Error e -> Alcotest.failf "dc failed: %s" e

let node sol c name = Mna.Dc.node_voltage sol (Netlist.Circuit.find_node c name)

let test_divider () =
  let c = circuit "v1 top 0 10\nr1 top mid 1k\nr2 mid 0 3k\n" in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  Alcotest.(check (float 1e-6)) "mid" 7.5 (node sol c "mid")

let test_current_source_sign () =
  (* i src np nn I pushes current from np through itself to nn: with
     i gnd out 1m into 1k, out sits at +1 V. *)
  let c = circuit "i1 0 out 1m\nr1 out 0 1k\n" in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  Alcotest.(check (float 1e-6)) "out" 1.0 (node sol c "out")

let test_branch_current () =
  let sol = solve "v1 top 0 10\nr1 top 0 2k\n" in
  match Mna.Dc.branch_current sol "v1" with
  | Some i -> Alcotest.(check (float 1e-9)) "5mA out of + terminal" (-5e-3) i
  | None -> Alcotest.fail "no branch current"

let test_controlled_sources () =
  (* VCVS doubling: e1 out 0 a 0 2 with a=3 -> out=6 *)
  let c = circuit "v1 a 0 3\ne1 out 0 a 0 2\nrl out 0 1k\n" in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  Alcotest.(check (float 1e-6)) "vcvs" 6.0 (node sol c "out");
  (* VCCS: g = 1mS driven by 2V -> 2mA into 1k -> 2V *)
  let c2 = circuit "v1 a 0 2\ng1 0 out a 0 1m\nrl out 0 1k\n" in
  let sol2 = Result.get_ok (Mna.Dc.solve ~value ~registry c2) in
  Alcotest.(check (float 1e-6)) "vccs" 2.0 (node sol2 c2 "out");
  (* CCCS mirrors the v1 branch current *)
  let c3 = circuit "v1 a 0 1\nr1 a 0 1k\nf1 0 out v1 1\nrl out 0 1k\n" in
  let sol3 = Result.get_ok (Mna.Dc.solve ~value ~registry c3) in
  Alcotest.(check (float 1e-6)) "cccs" (-1.0) (node sol3 c3 "out")

let test_inductor_dc_short () =
  let c = circuit "v1 a 0 5\nl1 a b 1m\nr1 b 0 1k\n" in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  Alcotest.(check (float 1e-6)) "b = a through inductor" 5.0 (node sol c "b")

let test_diode_connected_mos () =
  (* Diode-connected NMOS fed 100uA: gate-source voltage settles above
     vth, and the device current matches the source. *)
  let c = circuit "i1 0 d 100u\nm1 d d 0 0 nmos w=20u l=2u\n" in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  let vd = node sol c "d" in
  Alcotest.(check bool) "plausible vgs" true (vd > 0.7 && vd < 2.0);
  match List.assoc "m1" sol.Mna.Dc.ops with
  | Mna.Dc.Mos_op op ->
      Alcotest.(check bool) "current matches" true
        (Float.abs (op.Devices.Sig.id_ -. 100e-6) < 1e-6)
  | Mna.Dc.Bjt_op _ -> Alcotest.fail "wrong op kind"

let test_supply_power () =
  let sol = solve "v1 top 0 10\nr1 top 0 1k\n" in
  Alcotest.(check (float 1e-6)) "P = V^2/R" 0.1 (Mna.Dc.supply_power sol ~value)

let test_dc_divergence_reported () =
  (* A V source loop (two sources forcing different voltages on the same
     node pair through nothing) is singular. *)
  match Mna.Dc.solve ~value ~registry (circuit "v1 a 0 1\nv2 a 0 2\n") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_bjt_bias () =
  let c = circuit "vcc c 0 5\nvb b 0 0.65\nq1 c b 0 npn\n" in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  match List.assoc "q1" sol.Mna.Dc.ops with
  | Mna.Dc.Bjt_op op -> Alcotest.(check bool) "conducting" true (op.Devices.Sig.ic > 1e-7)
  | Mna.Dc.Mos_op _ -> Alcotest.fail "wrong op kind"

(* --- AC --- *)

let test_ac_rc_pole () =
  let c = circuit "vin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1u\n" in
  let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) c in
  let b = lin.Mna.Linearize.b in
  let sel = Mna.Linearize.output_vector lin ~pos:(Netlist.Circuit.find_node c "out") ~neg:None in
  let fp = 1.0 /. (2.0 *. Float.pi *. 1e3 *. 1e-6) in
  let h = Mna.Ac.transfer lin ~b ~sel ~w:(2.0 *. Float.pi *. fp) in
  Alcotest.(check (float 1e-3)) "half power" (1.0 /. Float.sqrt 2.0) (La.Cpx.abs h);
  Alcotest.(check (float 1e-2)) "-45 degrees" (-45.0) (La.Cpx.arg h *. 180.0 /. Float.pi)

let test_ac_superposition () =
  (* Linearity: doubling the excitation doubles the response. *)
  let c = circuit "vin in 0 0 ac 1\nr1 in out 1k\nc1 out 0 1n\nr2 out 0 10k\n" in
  let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) c in
  let b1 = lin.Mna.Linearize.b in
  let b2 = La.Vec.scale 2.0 b1 in
  let sel = Mna.Linearize.output_vector lin ~pos:(Netlist.Circuit.find_node c "out") ~neg:None in
  let h1 = Mna.Ac.transfer lin ~b:b1 ~sel ~w:1e5 in
  let h2 = Mna.Ac.transfer lin ~b:b2 ~sel ~w:1e5 in
  Alcotest.(check (float 1e-12)) "2x" (2.0 *. h1.La.Cpx.re) h2.La.Cpx.re

let test_ac_inductor () =
  (* RL highpass: at w = R/L gain is 1/sqrt 2. *)
  let c = circuit "vin in 0 0 ac 1\nl1 in out 1m\nr1 out 0 1k\n" in
  let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) c in
  let b = lin.Mna.Linearize.b in
  let sel = Mna.Linearize.output_vector lin ~pos:(Netlist.Circuit.find_node c "out") ~neg:None in
  let w = 1e3 /. 1e-3 in
  Alcotest.(check (float 1e-3)) "corner" (1.0 /. Float.sqrt 2.0)
    (La.Cpx.abs (Mna.Ac.transfer lin ~b ~sel ~w))

let test_ac_excitation_of () =
  let c = circuit "vin in 0 0 ac 1\nvdd t 0 5\nr1 in out 1k\nr2 t out 1k\nr3 out 0 1k\n" in
  let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) c in
  let sel = Mna.Linearize.output_vector lin ~pos:(Netlist.Circuit.find_node c "out") ~neg:None in
  let b_vin = Mna.Linearize.excitation_of lin ~src:"vin" in
  let b_vdd = Mna.Linearize.excitation_of lin ~src:"vdd" in
  (* symmetric bridge: both paths give gain 1/3 *)
  Alcotest.(check (float 1e-9)) "vin path" (1.0 /. 3.0) (Mna.Ac.dc_gain lin ~b:b_vin ~sel);
  Alcotest.(check (float 1e-9)) "vdd path" (1.0 /. 3.0) (Mna.Ac.dc_gain lin ~b:b_vdd ~sel)

let test_ugf_and_pm_single_pole () =
  (* VCCS gain stage: gm 1m into 100k || 1p: dc gain 100, pole at
     1/(2 pi 1e5 1e-12) = 1.59 MHz, UGF ~ 159 MHz, PM ~ 90. *)
  let c = circuit "vin in 0 0 ac 1\ng1 0 out in 0 1m\nr1 out 0 100k\nc1 out 0 1p\n" in
  let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) c in
  let b = lin.Mna.Linearize.b in
  let sel = Mna.Linearize.output_vector lin ~pos:(Netlist.Circuit.find_node c "out") ~neg:None in
  (match Mna.Ac.unity_gain_freq lin ~b ~sel with
  | Some f -> Alcotest.(check bool) "ugf ~159MHz" true (Float.abs (f -. 159.2e6) < 2e6)
  | None -> Alcotest.fail "no ugf");
  match Mna.Ac.phase_margin lin ~b ~sel with
  | Some pm -> Alcotest.(check bool) "pm ~90" true (Float.abs (pm -. 90.0) < 2.0)
  | None -> Alcotest.fail "no pm"

(* --- Transient --- *)

let test_tran_rc_step () =
  (* RC step response: v(t) = 1 - exp(-t/RC), RC = 1us. *)
  let c = circuit "vin in 0 0\nr1 in out 1k\nc1 out 0 1n\n" in
  let stim = [ ("vin", fun t -> if t > 0.0 then 1.0 else 0.0) ] in
  match Mna.Tran.simulate ~value ~registry ~tstop:5e-6 ~dt:10e-9 ~stimulus:stim c with
  | Error e -> Alcotest.failf "tran: %s" e
  | Ok r ->
      let out = Netlist.Circuit.find_node c "out" in
      let v = Mna.Tran.node_waveform r out in
      let n = Array.length v in
      let at_1tau = v.(100) in
      (* t = 1us *)
      Alcotest.(check bool) "~63% at 1 tau" true (Float.abs (at_1tau -. 0.632) < 0.02);
      Alcotest.(check bool) "settles to 1" true (Float.abs (v.(n - 1) -. 1.0) < 0.01)

let test_tran_slew_measurement () =
  (* A 1 mA source charging 1 nF slews at 1 V/us. Use a switched current
     source and measure dv/dt. *)
  let c = circuit "iin 0 out 0\ncl out 0 1n\nrl out 0 10meg\n" in
  let stim = [ ("iin", fun t -> if t > 1e-6 then 1e-3 else 0.0) ] in
  match Mna.Tran.simulate ~value ~registry ~tstop:4e-6 ~dt:20e-9 ~stimulus:stim c with
  | Error e -> Alcotest.failf "tran: %s" e
  | Ok r ->
      let out = Netlist.Circuit.find_node c "out" in
      let sr = Mna.Tran.slew_rate r out ~t_from:1.5e-6 ~t_to:3e-6 in
      Alcotest.(check bool) "1 V/us" true (Float.abs (sr -. 1e6) < 5e4)


(* --- Additional DC edge cases --- *)

let test_dc_warm_start () =
  (* Warm-starting from a previous solution converges in fewer passes. *)
  let c = circuit "vdd d 0 5\nvg g 0 1.5\nm1 d g 0 0 nmos w=10u l=2u\n" in
  let sol1 = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  let sol2 = Result.get_ok (Mna.Dc.solve ~x0:sol1.Mna.Dc.x ~value ~registry c) in
  Alcotest.(check bool) "warm start cheaper" true
    (sol2.Mna.Dc.iterations <= sol1.Mna.Dc.iterations)

let test_dc_cascode_stack () =
  (* A two-high cascode stack biases with both devices saturated. *)
  let c =
    circuit
      "vdd top 0 5\nvb1 g1 0 1.2\nvb2 g2 0 2.6\nm1 mid g1 0 0 nmos w=20u l=2u\nm2 out g2 mid 0 nmos w=20u l=2u\nrl top out 10k\n"
  in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  (match List.assoc "m1" sol.Mna.Dc.ops with
  | Mna.Dc.Mos_op op ->
      Alcotest.(check string) "m1 sat" "sat" (Devices.Sig.region_to_string op.Devices.Sig.region)
  | Mna.Dc.Bjt_op _ -> Alcotest.fail "op kind");
  let vmid = node sol c "mid" in
  Alcotest.(check bool) "mid between rails" true (vmid > 0.1 && vmid < 2.0)

let test_dc_pmos_mirror () =
  (* PMOS current mirror: output current tracks the reference. *)
  let c =
    circuit
      "vdd vdd 0 5\niref bp 0 100u\nmp1 bp bp vdd vdd pmos w=40u l=2u\nmp2 o bp vdd vdd pmos w=40u l=2u\nro o 0 20k\n"
  in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  match List.assoc "mp2" sol.Mna.Dc.ops with
  | Mna.Dc.Mos_op op ->
      Alcotest.(check bool) "mirrored ~100u" true
        (Float.abs (Float.abs op.Devices.Sig.id_ -. 100e-6) < 25e-6)
  | Mna.Dc.Bjt_op _ -> Alcotest.fail "op kind"

(* Tellegen-style check: at a DC solution, total power delivered by
   sources equals total power dissipated in resistive elements. *)
let test_dc_power_balance () =
  let c = circuit "v1 a 0 6\nr1 a b 1k\nr2 b 0 2k\nr3 b 0 2k\n" in
  let sol = Result.get_ok (Mna.Dc.solve ~value ~registry c) in
  let supplied = Mna.Dc.supply_power sol ~value in
  let va = node sol c "a" and vb = node sol c "b" in
  let dissipated =
    (((va -. vb) ** 2.0) /. 1e3) +. ((vb ** 2.0) /. 2e3) +. ((vb ** 2.0) /. 2e3)
  in
  Alcotest.(check (float 1e-9)) "power balances" supplied dissipated

let test_ac_differential_output () =
  (* Differential selector: v(a) - v(b) on a symmetric divider is zero. *)
  let c = circuit "vin in 0 0 ac 1\nr1 in a 1k\nr2 a 0 1k\nr3 in b 1k\nr4 b 0 1k\n" in
  let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) c in
  let b = lin.Mna.Linearize.b in
  let sel =
    Mna.Linearize.output_vector lin ~pos:(Netlist.Circuit.find_node c "a")
      ~neg:(Some (Netlist.Circuit.find_node c "b"))
  in
  Alcotest.(check (float 1e-12)) "symmetric difference" 0.0 (Mna.Ac.dc_gain lin ~b ~sel)

let test_linearize_missing_op () =
  let c = circuit "vin g 0 1.5\nvd d 0 3\nm1 d g 0 0 nmos w=10u l=2u\n" in
  match Mna.Linearize.build ~value ~ops:(fun _ -> None) c with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure without operating point"

let () =
  Alcotest.run "mna"
    [
      ( "dc",
        [
          Alcotest.test_case "divider" `Quick test_divider;
          Alcotest.test_case "current source sign" `Quick test_current_source_sign;
          Alcotest.test_case "branch current" `Quick test_branch_current;
          Alcotest.test_case "controlled sources" `Quick test_controlled_sources;
          Alcotest.test_case "inductor = dc short" `Quick test_inductor_dc_short;
          Alcotest.test_case "diode-connected mos" `Quick test_diode_connected_mos;
          Alcotest.test_case "supply power" `Quick test_supply_power;
          Alcotest.test_case "singular reported" `Quick test_dc_divergence_reported;
          Alcotest.test_case "bjt bias" `Quick test_bjt_bias;
        ] );
      ( "ac",
        [
          Alcotest.test_case "rc pole" `Quick test_ac_rc_pole;
          Alcotest.test_case "superposition" `Quick test_ac_superposition;
          Alcotest.test_case "inductor" `Quick test_ac_inductor;
          Alcotest.test_case "per-source excitation" `Quick test_ac_excitation_of;
          Alcotest.test_case "ugf and pm" `Quick test_ugf_and_pm_single_pole;
        ] );
      ( "tran",
        [
          Alcotest.test_case "rc step" `Quick test_tran_rc_step;
          Alcotest.test_case "slew measurement" `Quick test_tran_slew_measurement;
        ] );
      ( "dc-extra",
        [
          Alcotest.test_case "warm start" `Quick test_dc_warm_start;
          Alcotest.test_case "cascode stack" `Quick test_dc_cascode_stack;
          Alcotest.test_case "pmos mirror" `Quick test_dc_pmos_mirror;
          Alcotest.test_case "power balance" `Quick test_dc_power_balance;
        ] );
      ( "ac-extra",
        [
          Alcotest.test_case "differential output" `Quick test_ac_differential_output;
          Alcotest.test_case "missing op rejected" `Quick test_linearize_missing_op;
        ] );
    ]
