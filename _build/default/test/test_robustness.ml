(* Tests for the post-synthesis robustness extensions: process corners,
   sensitivity analysis, and the transient slew-rate cross-check. *)

let compile_simple_ota () =
  match Core.Compile.compile_source Suite.Simple_ota.source with
  | Ok p -> p
  | Error e -> Alcotest.fail e

(* A fixed, known-good sizing for the simple OTA (from a converged run) so
   these tests don't have to synthesize first. *)
let sizing =
  [
    ("w1", 60e-6); ("l1", 1.6e-6); ("w3", 30e-6); ("l3", 1.6e-6); ("w5", 50e-6);
    ("l5", 2.4e-6); ("ib", 120e-6);
  ]

let sized_state p =
  let st = Core.State.snapshot p.Core.Problem.state0 in
  Array.iteri
    (fun i info ->
      match info with
      | Core.State.User { name; _ } -> begin
          match List.assoc_opt name sizing with
          | Some v -> Core.State.set_initial st i v
          | None -> ()
        end
      | Core.State.Node_voltage _ -> ())
    st.Core.State.info;
  st

let test_corner_skew_changes_current () =
  let nominal = Result.get_ok (Devices.Registry.build ~process:"p1u2" []) in
  let slow_corner = List.nth Core.Corners.standard 1 in
  let slow = Result.get_ok (Devices.Registry.build ~process:"p1u2" ~corner:slow_corner []) in
  let id reg =
    match Devices.Registry.find_exn reg "nmos" with
    | Devices.Sig.Mos { eval; _ } ->
        (eval ~w:10e-6 ~l:2e-6 ~m:1.0 ~vd:2.5 ~vg:2.0 ~vs:0.0 ~vb:0.0).Devices.Sig.id_
    | Devices.Sig.Bjt _ -> Alcotest.fail "nmos"
  in
  Alcotest.(check bool) "slow silicon carries less current" true (id slow < 0.92 *. id nominal)

let test_corners_analyze () =
  let p = compile_simple_ota () in
  match Core.Corners.analyze ~source:Suite.Simple_ota.source ~sizing () with
  | Error e -> Alcotest.fail e
  | Ok results ->
      Alcotest.(check int) "five corners" 5 (List.length results);
      (* Every corner of this healthy design must simulate, and gain must
         vary across corners but stay in a plausible band. *)
      let gains =
        List.map
          (fun sc ->
            match List.assoc "adm" sc.Core.Corners.sc_values with
            | Ok v -> v
            | Error e -> Alcotest.failf "%s: %s" sc.sc_corner e)
          results
      in
      List.iter
        (fun g -> Alcotest.(check bool) "gain plausible" true (g > 20.0 && g < 70.0))
        gains;
      let mn = List.fold_left Float.min infinity gains in
      let mx = List.fold_left Float.max neg_infinity gains in
      Alcotest.(check bool) "corners actually differ" true (mx -. mn > 0.05);
      (* Worst case folds in the pessimistic direction. *)
      let wc = Core.Corners.worst_case p results in
      (match List.assoc "adm" wc with
      | Ok v -> Alcotest.(check (float 1e-9)) "worst gain is the min" mn v
      | Error e -> Alcotest.fail e);
      match List.assoc "pwr" wc with
      | Ok v ->
          let pwrs =
            List.filter_map
              (fun sc ->
                match List.assoc "pwr" sc.Core.Corners.sc_values with
                | Ok v -> Some v
                | Error _ -> None)
              results
          in
          Alcotest.(check (float 1e-12)) "worst power is the max"
            (List.fold_left Float.max 0.0 pwrs) v
      | Error e -> Alcotest.fail e

let test_sensitivity_shapes () =
  let p = compile_simple_ota () in
  let st = sized_state p in
  let s = Core.Sensitivity.compute p st in
  Alcotest.(check int) "vars" 7 (Array.length s.Core.Sensitivity.var_names);
  Alcotest.(check int) "specs" (List.length p.Core.Problem.specs)
    (Array.length s.Core.Sensitivity.spec_names);
  (* Slew rate is sr = ib/(cl + cd): its sensitivity to ib must be
     positive and close to +1 (cd's ib-dependence is second order). *)
  let dom = Core.Sensitivity.dominant s ~spec:"sr" 7 in
  let sens_ib = List.assoc "ib" dom in
  Alcotest.(check bool) "d(sr)/d(ib) ~ +1" true (sens_ib > 0.5 && sens_ib < 1.3);
  (* Area is sum w*l: sensitivity to any width is positive. *)
  let dom_area = Core.Sensitivity.dominant s ~spec:"area" 7 in
  List.iter
    (fun (v, sv) ->
      if String.length v = 2 && v.[0] = 'w' then
        Alcotest.(check bool) (v ^ " grows area") true (sv > 0.0))
    dom_area

let test_transient_slew_cross_check () =
  let p = compile_simple_ota () in
  let st = sized_state p in
  (* Expression-based SR at this sizing. *)
  ignore (Core.Moves.newton_global p st);
  let m = Core.Eval.measure p st in
  let sr_expr =
    match List.assoc "sr" m.Core.Eval.spec_values with
    | Some v -> v
    | None -> Alcotest.fail "sr unmeasured"
  in
  (* Transient-measured SR: simulate ~3x the expected slewing time. *)
  let tstop = 10.0 *. 2.5 /. sr_expr in
  match Core.Verify.transient_slew p st ~tf:"tf" ~vstep:2.0 ~tstop ~dt:(tstop /. 600.0) with
  | Error e -> Alcotest.failf "transient: %s" e
  | Ok sr_tran ->
      (* The hand expression and the bench measurement agree in order of
         magnitude (the paper's own SR rows differ by ~15%). *)
      let ratio = sr_tran /. sr_expr in
      if ratio < 0.3 || ratio > 3.0 then
        Alcotest.failf "slew mismatch: expr %g vs transient %g" sr_expr sr_tran

let () =
  Alcotest.run "robustness"
    [
      ( "corners",
        [
          Alcotest.test_case "skew changes current" `Quick test_corner_skew_changes_current;
          Alcotest.test_case "analyze + worst case" `Slow test_corners_analyze;
        ] );
      ("sensitivity", [ Alcotest.test_case "shapes and signs" `Slow test_sensitivity_shapes ]);
      ("slew", [ Alcotest.test_case "expression vs transient" `Slow test_transient_slew_cross_check ]);
    ]
