(* Tests for the annealing kernel: RNG, Lam schedule, Hustin selection,
   range limiter, and the driver on known optimization landscapes. *)

let test_rng_determinism () =
  let a = Anneal.Rng.create 42 and b = Anneal.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Anneal.Rng.float a) (Anneal.Rng.float b)
  done;
  let c = Anneal.Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Anneal.Rng.float a <> Anneal.Rng.float c)

let test_rng_uniformity () =
  let rng = Anneal.Rng.create 7 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Anneal.Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "out of range";
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~0.5" true (Float.abs (mean -. 0.5) < 0.01);
  Alcotest.(check bool) "var ~1/12" true (Float.abs (var -. (1.0 /. 12.0)) < 0.005)

let test_rng_int_bounds () =
  let rng = Anneal.Rng.create 3 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let v = Anneal.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of range";
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "nonpositive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Anneal.Rng.int rng 0))

let test_rng_gaussian () =
  let rng = Anneal.Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Anneal.Rng.gaussian rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "var ~1" true (Float.abs (var -. 1.0) < 0.05)

let test_rng_split_independence () =
  let rng = Anneal.Rng.create 5 in
  let a = Anneal.Rng.split rng and b = Anneal.Rng.split rng in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Anneal.Rng.float a = Anneal.Rng.float b then incr same
  done;
  Alcotest.(check bool) "split streams diverge" true (!same < 5)

(* --- Lam schedule --- *)

let test_lam_target_trajectory () =
  let t = Anneal.Lam.create ~total_moves:1000 ~t0:1.0 in
  (* At the start the target is near 1; after 40% it is the 0.44 plateau. *)
  Alcotest.(check bool) "starts high" true (Anneal.Lam.target_ratio t > 0.9);
  for _ = 1 to 400 do
    Anneal.Lam.record t ~accepted:true
  done;
  Alcotest.(check (float 1e-9)) "plateau" 0.44 (Anneal.Lam.target_ratio t);
  for _ = 1 to 590 do
    Anneal.Lam.record t ~accepted:false
  done;
  Alcotest.(check bool) "quench low" true (Anneal.Lam.target_ratio t < 0.1);
  Alcotest.(check bool) "not finished" true (not (Anneal.Lam.finished t));
  for _ = 1 to 10 do
    Anneal.Lam.record t ~accepted:false
  done;
  Alcotest.(check bool) "finished" true (Anneal.Lam.finished t)

let test_lam_feedback_direction () =
  (* All-accepted moves during the plateau push the temperature down. *)
  let t = Anneal.Lam.create ~total_moves:10000 ~t0:1.0 in
  for _ = 1 to 3000 do
    Anneal.Lam.record t ~accepted:true
  done;
  Alcotest.(check bool) "cooled" true (Anneal.Lam.temperature t < 1.0);
  (* All-rejected pushes it back up. *)
  let tmp = Anneal.Lam.temperature t in
  for _ = 1 to 1000 do
    Anneal.Lam.record t ~accepted:false
  done;
  Alcotest.(check bool) "reheated" true (Anneal.Lam.temperature t > tmp)

(* --- Hustin --- *)

let test_hustin_distribution () =
  let h = Anneal.Hustin.create ~classes:[| "a"; "b"; "c" |] in
  let probs = Anneal.Hustin.probabilities h in
  Alcotest.(check (float 1e-9)) "uniform at start" (1.0 /. 3.0) probs.(0);
  (* Class b produces all the gain; its probability must dominate. *)
  for _ = 1 to 500 do
    Anneal.Hustin.record h 1 ~accepted:true ~delta_cost:10.0;
    Anneal.Hustin.record h 0 ~accepted:false ~delta_cost:0.0;
    Anneal.Hustin.record h 2 ~accepted:true ~delta_cost:0.01
  done;
  let probs = Anneal.Hustin.probabilities h in
  Alcotest.(check bool) "b dominates" true (probs.(1) > 0.8);
  Alcotest.(check bool) "floor respected" true (probs.(0) >= 0.02 -. 1e-12);
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 probs)

let test_hustin_pick_follows_probs () =
  let h = Anneal.Hustin.create ~classes:[| "a"; "b" |] in
  for _ = 1 to 200 do
    Anneal.Hustin.record h 0 ~accepted:true ~delta_cost:5.0
  done;
  let rng = Anneal.Rng.create 9 in
  let counts = [| 0; 0 |] in
  for _ = 1 to 2000 do
    let k = Anneal.Hustin.pick h rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "mostly class a" true (counts.(0) > 1700)

(* --- Range limiter --- *)

let test_range_adaptation () =
  let r =
    Anneal.Range.create ~n:1 ~initial:[| 1.0 |] ~min_step:[| 1e-6 |] ~max_step:[| 10.0 |]
  in
  for _ = 1 to 100 do
    Anneal.Range.record r 0 ~accepted:true
  done;
  Alcotest.(check bool) "grows on accept" true (Anneal.Range.step r 0 > 1.0);
  for _ = 1 to 1000 do
    Anneal.Range.record r 0 ~accepted:false
  done;
  Alcotest.(check bool) "shrinks on reject" true (Anneal.Range.step r 0 < 0.01);
  for _ = 1 to 100000 do
    Anneal.Range.record r 0 ~accepted:false
  done;
  Alcotest.(check (float 1e-12)) "clamped at min" 1e-6 (Anneal.Range.step r 0)

(* --- Annealer on known landscapes --- *)

(* State: a float array; moves perturb one coordinate. *)
let vector_problem ~cost ~dim ~span =
  {
    Anneal.Annealer.classes = [| "perturb"; "big" |];
    propose =
      (fun st k rng ->
        let i = Anneal.Rng.int rng dim in
        let old = st.(i) in
        let scale = if k = 0 then 0.1 *. span else span in
        st.(i) <- Float.max (-.span) (Float.min span (old +. (Anneal.Rng.gaussian rng *. scale)));
        Some (fun () -> st.(i) <- old));
    cost;
    snapshot = Array.copy;
    frozen = None;
    on_stage = None;
    on_result = None;
  }

let test_annealer_sphere () =
  let dim = 4 in
  let cost st = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 st in
  let rng = Anneal.Rng.create 123 in
  let init = Array.make dim 3.0 in
  let out = Anneal.Annealer.run ~rng ~total_moves:20000 ~init (vector_problem ~cost ~dim ~span:5.0) in
  Alcotest.(check bool) "near origin" true (out.Anneal.Annealer.best_cost < 0.05)

let test_annealer_rastrigin () =
  (* Multimodal: plain descent from (3, 3) gets stuck; annealing should
     reach the global basin around the origin. *)
  let dim = 2 in
  let cost st =
    Array.fold_left
      (fun acc v -> acc +. ((v *. v) -. (10.0 *. Float.cos (2.0 *. Float.pi *. v)) +. 10.0))
      0.0 st
  in
  let rng = Anneal.Rng.create 99 in
  let init = [| 3.0; 3.0 |] in
  let out = Anneal.Annealer.run ~rng ~total_moves:40000 ~init (vector_problem ~cost ~dim ~span:5.12) in
  (* Global minimum is 0; the nearest non-global basins are at ~1. *)
  Alcotest.(check bool) "global basin" true (out.Anneal.Annealer.best_cost < 1.0)

let test_annealer_best_preserved () =
  (* The reported best must be at least as good as the final state. *)
  let cost st = Float.abs st.(0) in
  let rng = Anneal.Rng.create 5 in
  let out =
    Anneal.Annealer.run ~rng ~total_moves:5000 ~init:[| 4.0 |]
      (vector_problem ~cost ~dim:1 ~span:5.0)
  in
  Alcotest.(check bool) "best <= final" true
    (out.Anneal.Annealer.best_cost <= out.final_cost +. 1e-12);
  Alcotest.(check (float 1e-12)) "best matches its state" out.best_cost (cost out.best)

let test_annealer_stage_hook_runs () =
  let stages = ref 0 in
  let problem =
    { (vector_problem ~cost:(fun st -> st.(0) *. st.(0)) ~dim:1 ~span:1.0) with
      Anneal.Annealer.on_stage = Some (fun _ _ -> incr stages) }
  in
  let rng = Anneal.Rng.create 1 in
  let out = Anneal.Annealer.run ~rng ~total_moves:2000 ~init:[| 1.0 |] problem in
  Alcotest.(check bool) "stages ran" true (!stages > 0);
  Alcotest.(check int) "stage count matches" !stages out.Anneal.Annealer.stages

let () =
  Alcotest.run "anneal"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        ] );
      ( "lam",
        [
          Alcotest.test_case "target trajectory" `Quick test_lam_target_trajectory;
          Alcotest.test_case "feedback direction" `Quick test_lam_feedback_direction;
        ] );
      ( "hustin",
        [
          Alcotest.test_case "distribution" `Quick test_hustin_distribution;
          Alcotest.test_case "pick follows probs" `Quick test_hustin_pick_follows_probs;
        ] );
      ("range", [ Alcotest.test_case "adaptation" `Quick test_range_adaptation ]);
      ( "annealer",
        [
          Alcotest.test_case "sphere" `Quick test_annealer_sphere;
          Alcotest.test_case "rastrigin (multimodal)" `Slow test_annealer_rastrigin;
          Alcotest.test_case "best preserved" `Quick test_annealer_best_preserved;
          Alcotest.test_case "stage hook" `Quick test_annealer_stage_hook_runs;
        ] );
    ]
