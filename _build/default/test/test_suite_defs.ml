(* Consistency tests over the benchmark-suite definitions themselves: the
   paper tables we compare against must reference specs that exist, every
   circuit must compile, and the analysis invariants the paper highlights
   must hold across the whole suite. *)

let compiled =
  lazy
    (List.map
       (fun (e : Suite.Ckts.entry) ->
         match Core.Compile.compile_source e.source with
         | Ok p -> (e, p)
         | Error msg -> Alcotest.failf "%s: %s" e.name msg)
       Suite.Ckts.all)

let test_paper_rows_reference_real_specs () =
  List.iter
    (fun ((e : Suite.Ckts.entry), p) ->
      List.iter
        (fun (name, _, _, _) ->
          match Core.Problem.find_spec p name with
          | Some _ -> ()
          | None -> Alcotest.failf "%s: paper row %s has no matching spec" e.name name)
        e.paper_table2)
    (Lazy.force compiled)

let test_every_circuit_has_objective_and_constraints () =
  List.iter
    (fun ((e : Suite.Ckts.entry), p) ->
      let objs, cons =
        List.partition
          (fun (s : Core.Problem.spec) ->
            match s.kind with
            | Netlist.Ast.Objective_max | Netlist.Ast.Objective_min -> true
            | Netlist.Ast.Constraint_ge | Netlist.Ast.Constraint_le -> false)
          p.Core.Problem.specs
      in
      if objs = [] then Alcotest.failf "%s: no objective" e.name;
      if cons = [] then Alcotest.failf "%s: no constraints" e.name)
    (Lazy.force compiled)

let test_node_vars_exceed_user_vars_everywhere () =
  (* The paper calls this out explicitly for Table 1. *)
  List.iter
    (fun ((e : Suite.Ckts.entry), p) ->
      let a = p.Core.Problem.analysis in
      if a.Core.Problem.n_node_vars <= a.n_user_vars then
        Alcotest.failf "%s: node vars (%d) <= user vars (%d)" e.name a.n_node_vars a.n_user_vars)
    (Lazy.force compiled)

let test_every_bias_network_solvable () =
  (* The reference simulator must be able to bias every benchmark at its
     initial sizing — otherwise verification could never run. *)
  List.iter
    (fun ((e : Suite.Ckts.entry), p) ->
      let st = p.Core.Problem.state0 in
      let env = Core.Eval.value_env p st in
      let value ex = Netlist.Expr.eval env ex in
      match Mna.Dc.solve ~value ~registry:p.Core.Problem.registry p.Core.Problem.bias with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: bias unsolvable at initial sizing: %s" e.name msg)
    (Lazy.force compiled)

let test_jigs_dc_solvable () =
  List.iter
    (fun ((e : Suite.Ckts.entry), p) ->
      let st = p.Core.Problem.state0 in
      let env = Core.Eval.value_env p st in
      let value ex = Netlist.Expr.eval env ex in
      List.iter
        (fun (j : Core.Problem.jig) ->
          match Mna.Dc.solve ~value ~registry:p.Core.Problem.registry j.jig_circuit with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "%s/%s: %s" e.name j.jig_name msg)
        p.Core.Problem.jigs)
    (Lazy.force compiled)

let test_differential_benchmark_measures_differentially () =
  (* novel-folded-cascode declares v(outp,outm): the compiled tf must have
     a negative output node. *)
  let _, p =
    List.find
      (fun ((e : Suite.Ckts.entry), _) -> e.name = "novel-folded-cascode")
      (Lazy.force compiled)
  in
  let j = List.hd p.Core.Problem.jigs in
  match List.assoc "tf" j.Core.Problem.tfs with
  | { Core.Problem.out_neg = Some _; _ } -> ()
  | { Core.Problem.out_neg = None; _ } -> Alcotest.fail "tf should be differential"

let test_goal_text_and_rows () =
  let _, p =
    List.find (fun ((e : Suite.Ckts.entry), _) -> e.name = "simple-ota") (Lazy.force compiled)
  in
  let adm = Option.get (Core.Problem.find_spec p "adm") in
  Alcotest.(check string) "objective" "maximize" (Core.Report.goal_text adm);
  let ugf = Option.get (Core.Problem.find_spec p "ugf") in
  Alcotest.(check string) "constraint" ">=50meg" (Core.Report.goal_text ugf);
  let row = Core.Report.spec_row ugf ~predicted:(Some 59.9e6) ~simulated:(Some (Ok 60.0e6)) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "row mentions prediction" true (contains row "59.9meg");
  Alcotest.(check bool) "row mentions simulation" true (contains row "60meg")

let () =
  Alcotest.run "suite-defs"
    [
      ( "consistency",
        [
          Alcotest.test_case "paper rows match specs" `Quick test_paper_rows_reference_real_specs;
          Alcotest.test_case "objectives and constraints" `Quick
            test_every_circuit_has_objective_and_constraints;
          Alcotest.test_case "node vars > user vars" `Quick
            test_node_vars_exceed_user_vars_everywhere;
          Alcotest.test_case "bias networks solvable" `Quick test_every_bias_network_solvable;
          Alcotest.test_case "jigs dc-solvable" `Quick test_jigs_dc_solvable;
          Alcotest.test_case "differential measurement" `Quick
            test_differential_benchmark_measures_differentially;
          Alcotest.test_case "report rows" `Quick test_goal_text_and_rows;
        ] );
    ]
