test/test_baselines.ml: Alcotest Anneal Baselines Core Float List Suite
