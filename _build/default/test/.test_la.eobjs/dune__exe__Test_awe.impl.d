test/test_awe.ml: Alcotest Array Awe Buffer Float La List Mna Netlist Printf QCheck QCheck_alcotest Random Unix
