test/test_core.ml: Alcotest Anneal Array Core Devices Float List Mna Netlist Option Printf Result String Suite
