test/test_suite_defs.ml: Alcotest Core Lazy List Mna Netlist Option String Suite
