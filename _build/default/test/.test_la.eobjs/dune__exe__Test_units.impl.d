test/test_units.ml: Alcotest Float List Netlist QCheck QCheck_alcotest
