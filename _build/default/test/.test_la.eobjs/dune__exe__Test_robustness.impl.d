test/test_robustness.ml: Alcotest Array Core Devices Float List Result String Suite
