test/test_devices.ml: Alcotest Array Devices Float List Option QCheck QCheck_alcotest Result
