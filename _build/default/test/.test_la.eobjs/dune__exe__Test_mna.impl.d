test/test_mna.ml: Alcotest Array Devices Float La List Mna Netlist Result
