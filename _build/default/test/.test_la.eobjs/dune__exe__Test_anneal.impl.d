test/test_anneal.ml: Alcotest Anneal Array Float Fun
