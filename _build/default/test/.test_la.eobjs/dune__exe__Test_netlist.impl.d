test/test_netlist.ml: Alcotest List Netlist
