test/test_mna.mli:
