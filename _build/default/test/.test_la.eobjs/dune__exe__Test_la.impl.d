test/test_la.ml: Alcotest Array Float Fun La List QCheck QCheck_alcotest Random
