test/test_suite_defs.mli:
