(* Tests for SPICE numeric literals and the expression language. *)

let check_parse s expect =
  match Netlist.Units.parse s with
  | Ok v ->
      if Float.abs (v -. expect) > 1e-12 *. (1.0 +. Float.abs expect) then
        Alcotest.failf "%s -> %.17g, expected %.17g" s v expect
  | Error e -> Alcotest.failf "%s failed: %s" s e

let test_units_suffixes () =
  check_parse "1" 1.0;
  check_parse "1.5" 1.5;
  check_parse "-3" (-3.0);
  check_parse "1k" 1e3;
  check_parse "2.5u" 2.5e-6;
  check_parse "1Meg" 1e6;
  check_parse "1meg" 1e6;
  check_parse "1MEG" 1e6;
  check_parse "10m" 10e-3;
  check_parse "100f" 100e-15;
  check_parse "3p" 3e-12;
  check_parse "4.7n" 4.7e-9;
  check_parse "2g" 2e9;
  check_parse "1t" 1e12;
  check_parse "1e-12" 1e-12;
  check_parse "1.5e3" 1500.0;
  (* trailing unit letters after the suffix, as SPICE allows *)
  check_parse "10pF" 10e-12;
  check_parse "5kOhm" 5e3

let test_units_errors () =
  (match Netlist.Units.parse "" with Error _ -> () | Ok _ -> Alcotest.fail "empty");
  (match Netlist.Units.parse "abc" with Error _ -> () | Ok _ -> Alcotest.fail "alpha");
  match Netlist.Units.parse "1x" with Error _ -> () | Ok _ -> Alcotest.fail "bad suffix"

let test_units_is_number () =
  Alcotest.(check bool) "digit" true (Netlist.Units.is_number "5u");
  Alcotest.(check bool) "neg" true (Netlist.Units.is_number "-3");
  Alcotest.(check bool) "dot" true (Netlist.Units.is_number ".5");
  Alcotest.(check bool) "ident" false (Netlist.Units.is_number "w1");
  Alcotest.(check bool) "empty" false (Netlist.Units.is_number "")

let prop_format_roundtrip =
  QCheck.Test.make ~name:"units: format then parse is identity" ~count:200
    QCheck.(float_range (-1e14) 1e14)
    (fun v ->
      QCheck.assume (Float.is_finite v);
      match Netlist.Units.parse (Netlist.Units.format v) with
      | Ok v' -> Float.abs (v -. v') <= 1e-4 *. (1.0 +. Float.abs v)
      | Error _ -> false)

(* --- Expressions --- *)

let env vars =
  {
    Netlist.Expr.lookup =
      (fun path ->
        match path with
        | [ one ] -> ( match List.assoc_opt one vars with Some v -> v | None -> raise Not_found)
        | _ -> raise Not_found);
    call =
      (fun name args ->
        match (name, args) with
        | "twice", [ Netlist.Expr.Num v ] -> 2.0 *. v
        | _ -> raise (Netlist.Expr.Eval_error ("unknown fn " ^ name)));
  }

let eval ?(vars = []) s = Netlist.Expr.eval (env vars) (Netlist.Expr.parse s)

let check_eval ?vars s expect =
  let v = eval ?vars s in
  if Float.abs (v -. expect) > 1e-9 *. (1.0 +. Float.abs expect) then
    Alcotest.failf "%s -> %.17g, expected %.17g" s v expect

let test_expr_arith () =
  check_eval "1 + 2 * 3" 7.0;
  check_eval "(1 + 2) * 3" 9.0;
  check_eval "2 ^ 3 ^ 2" 512.0;
  (* right assoc *)
  check_eval "-2 * 3" (-6.0);
  check_eval "10 / 4" 2.5;
  check_eval "1Meg / 1k" 1000.0;
  check_eval "3p * 2" 6e-12

let test_expr_vars_calls () =
  check_eval ~vars:[ ("w", 4.0); ("l", 2.0) ] "w / l + 1" 3.0;
  check_eval "twice(21)" 42.0;
  check_eval ~vars:[ ("x", 3.0) ] "twice(x) + twice(2)" 10.0

let test_expr_refs () =
  let e = Netlist.Expr.parse "i / (2 * (cl + xamp.m1.cd))" in
  let refs = Netlist.Expr.refs e in
  Alcotest.(check bool) "dotted ref present" true (List.mem [ "xamp"; "m1"; "cd" ] refs);
  Alcotest.(check bool) "plain refs" true (List.mem [ "i" ] refs && List.mem [ "cl" ] refs)

let test_expr_calls_listing () =
  let e = Netlist.Expr.parse "db(dc_gain(tf)) - db(dc_gain(tfdd))" in
  let calls = List.map fst (Netlist.Expr.calls e) in
  Alcotest.(check int) "four calls" 4 (List.length calls);
  Alcotest.(check bool) "has db" true (List.mem "db" calls)

let test_expr_subst () =
  let e = Netlist.Expr.parse "w * 2" in
  let e' = Netlist.Expr.subst [ ("w", Netlist.Expr.const 5.0) ] e in
  let v = Netlist.Expr.eval (env []) e' in
  Alcotest.(check (float 1e-9)) "substituted" 10.0 v

let test_expr_division_by_zero () =
  match eval "1 / 0" with
  | exception Netlist.Expr.Eval_error _ -> ()
  | v -> Alcotest.failf "expected Eval_error, got %g" v

let test_expr_parse_errors () =
  let bad s =
    match Netlist.Expr.parse s with
    | exception Netlist.Expr.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "1 +";
  bad "foo(";
  bad "(1 + 2";
  bad "1 2";
  bad "@"

let test_expr_size () =
  Alcotest.(check int) "size" 5 (Netlist.Expr.size (Netlist.Expr.parse "1 + 2 * x"))

let () =
  Alcotest.run "units-expr"
    [
      ( "units",
        [
          Alcotest.test_case "suffixes" `Quick test_units_suffixes;
          Alcotest.test_case "errors" `Quick test_units_errors;
          Alcotest.test_case "is_number" `Quick test_units_is_number;
          QCheck_alcotest.to_alcotest prop_format_roundtrip;
        ] );
      ( "expr",
        [
          Alcotest.test_case "arithmetic" `Quick test_expr_arith;
          Alcotest.test_case "vars and calls" `Quick test_expr_vars_calls;
          Alcotest.test_case "dotted refs" `Quick test_expr_refs;
          Alcotest.test_case "calls listing" `Quick test_expr_calls_listing;
          Alcotest.test_case "subst" `Quick test_expr_subst;
          Alcotest.test_case "division by zero" `Quick test_expr_division_by_zero;
          Alcotest.test_case "parse errors" `Quick test_expr_parse_errors;
          Alcotest.test_case "size" `Quick test_expr_size;
        ] );
    ]
