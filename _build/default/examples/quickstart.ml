(* Quickstart: the paper's Section-IV walkthrough, end to end.

   We size and bias the simple differential amplifier of Fig. 1a to
   maximize differential gain such that the unity-gain frequency is at
   least 1 MHz and the slew rate at least 1 V/us — the exact running
   example of the paper — then verify the result with the reference
   simulator.

   Run with: dune exec examples/quickstart.exe *)

(* The input description: topology of the circuit under design, a test
   jig defining how performance is measured, a bias circuit for the
   relaxed-dc formulation, independent variables, and the specs. *)
let problem_description =
  {|.title section-IV differential amplifier
.process p1u2
.param vddval=5
.param vssval=0
.param cl=5p

.subckt amp inp inm outp outm vdd vss
* matched differential pair: both devices share the W and L variables
m1 outm inp na vss nmos w='w' l='l'
m2 outp inm na vss nmos w='w' l='l'
* given loads (fixed-size PMOS mirror biased by vb)
m3 outp nb vdd vdd pmos w=50u l=2u
m4 outm nb vdd vdd pmos w=50u l=2u
vb nb 0 'vbias'
* the tail current is an independent variable
itail na 0 'i'
.ends

.var w min=2u max=300u steps=100
.var l min=1.2u max=20u steps=50
.var i min=5u max=500u grid=log
.var vbias min=2.8 max=4.5

.jig main
xamp inp inm outp outm nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 'vssval'
vin inp 0 2.5 ac 1
vcm inm 0 2.5
cl1 outp 0 'cl'
cl2 outm 0 'cl'
.pz tf v(outp,outm) vin
.endjig

.bias
xamp inp inm outp outm nvdd nvss amp
vdd nvdd 0 'vddval'
vss nvss 0 'vssval'
vin inp 0 2.5
vcm inm 0 2.5
cl1 outp 0 'cl'
cl2 outm 0 'cl'
.endbias

.obj adm 'dc_gain(tf)' good=1000 bad=10
.spec ugf 'ugf(tf)' good=1meg bad=10k
.spec sr 'i / (2 * (cl + xamp.m1.cd + xamp.m3.cd))' good=1e6 bad=1e4
|}

let () =
  print_endline "== ASTRX: compiling the problem ==";
  match Core.Compile.compile_source problem_description with
  | Error e -> failwith e
  | Ok p ->
      let a = p.Core.Problem.analysis in
      Printf.printf "independent variables: %d user + %d node voltages (relaxed dc)\n"
        a.Core.Problem.n_user_vars a.n_node_vars;
      Printf.printf "cost function: %d terms\n" a.n_cost_terms;
      print_endline "== OBLX: annealing ==";
      let r = Core.Oblx.synthesize ~seed:42 ~moves:20000 p in
      Printf.printf "done: %d moves, %.2f ms per circuit evaluation, %.1f s total\n"
        r.Core.Oblx.moves r.eval_time_ms r.run_time_s;
      print_endline "sized design:";
      Core.Report.print_sizes Format.std_formatter p r.final;
      Format.pp_print_flush Format.std_formatter ();
      print_endline "== verification against the reference simulator ==";
      let sims =
        match Core.Verify.simulate_specs p r.final with
        | Ok sims -> Some sims
        | Error e ->
            Printf.printf "(verification failed: %s)\n" e;
            None
      in
      Printf.printf "%-10s %-12s %10s / %-10s\n" "spec" "goal" "oblx" "sim";
      List.iter
        (fun (s : Core.Problem.spec) ->
          let predicted = List.assoc s.Core.Problem.spec_name r.predicted in
          let simulated = Option.map (List.assoc s.Core.Problem.spec_name) sims in
          print_endline (Core.Report.spec_row s ~predicted ~simulated))
        p.Core.Problem.specs
