(* Example: synthesize the two-stage Miller op-amp benchmark, inspect the
   AWE view of the final design (poles, zeros, phase margin), and sweep
   the compensation capacitor to see the stability trade-off — the kind
   of post-synthesis exploration the public API supports.

   Run with: dune exec examples/two_stage_design.exe *)

let () =
  match Core.Compile.compile_source Suite.Two_stage.source with
  | Error e -> failwith e
  | Ok p ->
      print_endline "== synthesizing the two-stage op-amp ==";
      let r = Core.Oblx.synthesize ~seed:17 ~moves:30000 p in
      Printf.printf "cost %.4g after %d moves (%.1f s)\n" r.Core.Oblx.best_cost r.moves
        r.run_time_s;
      Core.Report.print_sizes Format.std_formatter p r.final;
      Format.pp_print_flush Format.std_formatter ();
      (* Look inside: the reduced-order model OBLX used for the final
         design. *)
      let m = Core.Eval.measure p r.final in
      (match List.assoc_opt "tf" m.Core.Eval.roms with
      | Some (Ok rom) ->
          Printf.printf "AWE model of the differential path (order %d):\n"
            rom.Awe.Rom.rom.Awe.Pade.q;
          Array.iter
            (fun z ->
              Printf.printf "  pole at (%s, %s) rad/s\n" (Core.Report.eng z.La.Cpx.re)
                (Core.Report.eng z.La.Cpx.im))
            (Awe.Rom.poles rom);
          Array.iter
            (fun z ->
              Printf.printf "  zero at (%s, %s) rad/s\n" (Core.Report.eng z.La.Cpx.re)
                (Core.Report.eng z.La.Cpx.im))
            (Awe.Rom.zeros rom)
      | Some (Error e) -> Printf.printf "no ROM: %s\n" e
      | None -> ());
      (* Sweep the compensation cap around the chosen value and watch the
         phase margin move: a classical stability trade-off, evaluated
         with AWE in microseconds per point. *)
      print_endline "compensation-capacitor sweep (AWE-evaluated):";
      let st = Core.State.snapshot r.final in
      let cc_index =
        let rec find i =
          match st.Core.State.info.(i) with
          | Core.State.User { name = "ccomp"; _ } -> i
          | Core.State.User _ | Core.State.Node_voltage _ -> find (i + 1)
        in
        find 0
      in
      let cc0 = st.Core.State.values.(cc_index) in
      List.iter
        (fun factor ->
          Core.State.set_initial st cc_index (cc0 *. factor);
          let m = Core.Eval.measure p st in
          let pm = List.assoc "pm" m.Core.Eval.spec_values in
          let ugf = List.assoc "ugf" m.Core.Eval.spec_values in
          Printf.printf "  cc = %-8s pm = %-8s ugf = %s\n"
            (Core.Report.eng (cc0 *. factor))
            (match pm with Some v -> Printf.sprintf "%.1f deg" v | None -> "fail")
            (match ugf with Some v -> Core.Report.eng v | None -> "fail"))
        [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
