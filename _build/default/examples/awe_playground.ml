(* Example: Asymptotic Waveform Evaluation on its own — the substrate that
   makes equation-free synthesis possible. Builds an RC transmission-line
   ladder, reduces it with AWE, and compares the reduced model against the
   exact AC response, including timing.

   Run with: dune exec examples/awe_playground.exe *)

let value e =
  Netlist.Expr.eval
    { Netlist.Expr.lookup = (fun _ -> raise Not_found); call = (fun _ _ -> nan) }
    e

(* An n-section RC ladder: vin - R - o1 - R - o2 ... with C to ground. *)
let ladder n =
  let b = Buffer.create 256 in
  Buffer.add_string b "vin n0 0 0 ac 1\n";
  for k = 1 to n do
    Buffer.add_string b (Printf.sprintf "r%d n%d n%d 100\n" k (k - 1) k);
    Buffer.add_string b (Printf.sprintf "c%d n%d 0 1p\n" k k)
  done;
  Netlist.Elab.flatten ~subckts:[] (Netlist.Parser.parse_elements (Buffer.contents b))

let () =
  List.iter
    (fun n ->
      let ckt = ladder n in
      let lin = Mna.Linearize.build ~value ~ops:(fun _ -> None) ckt in
      let b = lin.Mna.Linearize.b in
      let out = Netlist.Circuit.find_node ckt (Printf.sprintf "n%d" n) in
      let sel = Mna.Linearize.output_vector lin ~pos:out ~neg:None in
      match Awe.Rom.build lin ~b ~sel with
      | Error e -> Printf.printf "ladder %d: AWE failed: %s\n" n e
      | Ok rom ->
          (* Accuracy vs direct AC, measured where the response is still
             meaningful (above -60 dB): moment matching at s=0 cannot — and
             need not — track a response attenuated into the noise floor. *)
          let worst = ref 0.0 in
          for k = 0 to 60 do
            let f = 1e3 *. (10.0 ** (float_of_int k /. 10.0)) in
            let exact =
              La.Cpx.abs (Mna.Ac.transfer lin ~b ~sel ~w:(2.0 *. Float.pi *. f))
            in
            let approx = Awe.Rom.magnitude_at rom ~f in
            if exact > 1e-3 then
              worst := Float.max !worst (Float.abs (approx -. exact) /. exact)
          done;
          (* timing: one AWE evaluation vs a 61-point direct sweep *)
          let time f =
            let t0 = Unix.gettimeofday () in
            let iters = 20 in
            for _ = 1 to iters do
              f ()
            done;
            (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e3
          in
          let t_awe = time (fun () -> ignore (Awe.Rom.build lin ~b ~sel)) in
          let freqs = Array.init 61 (fun k -> 1e3 *. (10.0 ** (float_of_int k /. 10.0))) in
          let t_ac = time (fun () -> ignore (Mna.Ac.sweep lin ~b ~sel freqs)) in
          Printf.printf
            "ladder n=%2d: AWE order %d, worst |H| error %.2e, %5.2f ms vs %6.2f ms direct (%.0fx)\n"
            n rom.Awe.Rom.rom.Awe.Pade.q !worst t_awe t_ac (t_ac /. t_awe))
    [ 2; 5; 10; 20; 40 ]
