(* Example: post-synthesis robustness analysis — the paper's stated
   future work, implemented here. Synthesize the Simple OTA, then:

   1. re-verify the winning design at five process corners (slow/fast
      silicon, threshold skews) with the reference simulator, and reduce
      to the worst-case value of every specification;
   2. compute normalized sensitivities d(spec)/d(var) to see which device
      dominates each margin.

   Run with: dune exec examples/robustness.exe *)

let () =
  match Core.Compile.compile_source Suite.Simple_ota.source with
  | Error e -> failwith e
  | Ok p ->
      print_endline "== synthesis (nominal corner) ==";
      let r = Core.Oblx.synthesize ~seed:99 ~moves:25000 p in
      Printf.printf "best cost %.4g in %.0f s\n" r.Core.Oblx.best_cost r.run_time_s;
      let sizing = Core.Report.sizes p r.final in
      List.iter (fun (n, v) -> Printf.printf "  %-6s = %s\n" n (Core.Report.eng v)) sizing;
      print_endline "== corner analysis ==";
      (match
         Core.Corners.analyze ~source:Suite.Simple_ota.source ~sizing ()
       with
      | Error e -> Printf.printf "corner analysis failed: %s\n" e
      | Ok results ->
          (* header *)
          Printf.printf "%-10s" "spec";
          List.iter (fun sc -> Printf.printf " %12s" sc.Core.Corners.sc_corner) results;
          Printf.printf " %12s\n" "worst-case";
          let worst = Core.Corners.worst_case p results in
          List.iter
            (fun (s : Core.Problem.spec) ->
              let name = s.Core.Problem.spec_name in
              Printf.printf "%-10s" name;
              List.iter
                (fun sc ->
                  match List.assoc name sc.Core.Corners.sc_values with
                  | Ok v -> Printf.printf " %12s" (Core.Report.eng v)
                  | Error _ -> Printf.printf " %12s" "fail")
                results;
              (match List.assoc name worst with
              | Ok v -> Printf.printf " %12s" (Core.Report.eng v)
              | Error _ -> Printf.printf " %12s" "fail");
              print_newline ())
            p.Core.Problem.specs);
      print_endline "== sensitivities (normalized d(spec)/d(var)) ==";
      let s = Core.Sensitivity.compute p r.final in
      Core.Sensitivity.pp Format.std_formatter s;
      Format.pp_print_flush Format.std_formatter ();
      print_endline "dominant variables for the unity-gain frequency:";
      List.iter
        (fun (v, sens) -> Printf.printf "  %-6s %+.3f\n" v sens)
        (Core.Sensitivity.dominant s ~spec:"ugf" 3)
