examples/novel_cascode.ml: Array Core List Option Printf Suite
