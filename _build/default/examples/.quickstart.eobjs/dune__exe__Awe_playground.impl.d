examples/awe_playground.ml: Array Awe Buffer Float La List Mna Netlist Printf Unix
