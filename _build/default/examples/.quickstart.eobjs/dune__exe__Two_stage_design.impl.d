examples/two_stage_design.ml: Array Awe Core Format La List Printf Suite
