examples/robustness.mli:
