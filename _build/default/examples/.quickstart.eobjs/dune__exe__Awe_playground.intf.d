examples/awe_playground.mli:
