examples/two_stage_design.mli:
