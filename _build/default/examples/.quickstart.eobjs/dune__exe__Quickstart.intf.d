examples/quickstart.mli:
