examples/robustness.ml: Core Format List Printf Suite
