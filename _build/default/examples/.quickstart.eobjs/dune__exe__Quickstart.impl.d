examples/quickstart.ml: Core Format List Option Printf
