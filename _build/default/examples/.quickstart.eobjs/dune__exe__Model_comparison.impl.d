examples/model_comparison.ml: Core List Printf Suite
