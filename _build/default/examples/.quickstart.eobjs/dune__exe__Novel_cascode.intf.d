examples/novel_cascode.mli:
