(* Example: the paper's Section-VI model experiment.

   Synthesize the same Simple OTA under three device-model/process
   combinations — BSIM/2u, BSIM/1.2u, MOS3/1.2u — with identical
   specifications, minimizing active area. The paper found 580 / 300 /
   140 um^2: the same tool, the same topology, and a 2x area difference
   purely from the choice of device model. Encapsulated evaluators make
   the swap a one-line change.

   Run with: dune exec examples/model_comparison.exe *)

let combos =
  [
    ("BSIM / 2u", Suite.Simple_ota.source_with ~process:"p2u" ~nmos:"nmos_bsim" ~pmos:"pmos_bsim");
    ("BSIM / 1.2u", Suite.Simple_ota.source_with ~process:"p1u2" ~nmos:"nmos_bsim" ~pmos:"pmos_bsim");
    ("MOS3 / 1.2u", Suite.Simple_ota.source_with ~process:"p1u2" ~nmos:"nmos" ~pmos:"pmos");
  ]

let () =
  Printf.printf "%-12s %10s %10s %10s %8s\n" "model/proc" "area um^2" "gain dB" "ugf" "pm";
  List.iter
    (fun (label, src) ->
      match Core.Compile.compile_source src with
      | Error e -> Printf.printf "%-12s FAIL %s\n" label e
      | Ok p ->
          let r = Core.Oblx.synthesize ~seed:5 ~moves:25000 p in
          let get name =
            match List.assoc name r.Core.Oblx.predicted with Some v -> v | None -> nan
          in
          Printf.printf "%-12s %10.0f %10.1f %10s %8.1f\n%!" label (get "area") (get "adm")
            (Core.Report.eng (get "ugf"))
            (get "pm"))
    combos;
  print_endline "";
  print_endline
    "The paper's point: the same specifications under different device models\n\
     produce substantially different areas — performance prediction accuracy\n\
     depends on the model, so a synthesis tool must treat models as\n\
     encapsulated, swappable components rather than baking in equations."
