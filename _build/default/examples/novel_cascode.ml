(* Example: re-synthesis of the "novel" fully differential folded-cascode
   op-amp (Table 3 of the paper) — a just-published topology whose
   performance equations cannot be looked up in a textbook, with several
   poles and zeros interacting near the unity-gain point.

   We first evaluate the hand-sized "manual" reference through the
   reference simulator, then let OBLX re-synthesize the topology against
   the manual design's own numbers as constraints.

   Run with: dune exec examples/novel_cascode.exe *)

let apply_sizing st sizes =
  Array.iteri
    (fun i info ->
      match info with
      | Core.State.User { name; _ } -> begin
          match List.assoc_opt name sizes with
          | Some v -> Core.State.set_initial st i v
          | None -> ()
        end
      | Core.State.Node_voltage _ -> ())
    st.Core.State.info

let () =
  match Core.Compile.compile_source Suite.Novel_folded_cascode.source with
  | Error e -> failwith e
  | Ok p ->
      print_endline "== manual reference design (hand-sized, simulator-measured) ==";
      let manual = Core.State.snapshot p.Core.Problem.state0 in
      apply_sizing manual Suite.Novel_folded_cascode.manual_sizing;
      let manual_vals =
        match Core.Verify.simulate_specs p manual with
        | Ok sims -> sims
        | Error e -> failwith ("manual design does not simulate: " ^ e)
      in
      List.iter
        (fun (n, v) ->
          Printf.printf "  %-10s %s\n" n
            (match v with Ok x -> Core.Report.eng x | Error e -> "fail: " ^ e))
        manual_vals;
      print_endline "== OBLX re-synthesis ==";
      let r = Core.Oblx.synthesize ~seed:23 p in
      Printf.printf "cost %.4g after %d moves (%.1f s, %.1f ms/eval)\n" r.Core.Oblx.best_cost
        r.moves r.run_time_s r.eval_time_ms;
      let sims =
        match Core.Verify.simulate_specs p r.final with Ok s -> Some s | Error _ -> None
      in
      Printf.printf "%-10s %12s %12s %12s\n" "spec" "manual" "oblx" "sim";
      List.iter
        (fun (s : Core.Problem.spec) ->
          let name = s.Core.Problem.spec_name in
          let man =
            match List.assoc name manual_vals with Ok v -> Core.Report.eng v | Error _ -> "-"
          in
          let pred =
            match List.assoc name r.predicted with Some v -> Core.Report.eng v | None -> "fail"
          in
          let sim =
            match Option.map (List.assoc name) sims with
            | Some (Ok v) -> Core.Report.eng v
            | Some (Error _) -> "fail"
            | None -> "-"
          in
          Printf.printf "%-10s %12s %12s %12s\n" name man pred sim)
        p.Core.Problem.specs
