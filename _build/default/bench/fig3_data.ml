(* Prior-tool data points for the Fig. 3 reproduction.

   These are qualitative positions read off the paper's own Figure 3 and
   its Section II discussion — we obviously cannot rerun 1980s tools, so
   the prior-art points are literature constants (see DESIGN.md). The
   ASTRX/OBLX points and the two implemented-baseline points are measured
   by this harness.

   Fields: tool, group, circuit complexity (devices + design variables),
   worst prediction error vs simulation (percent), first-time design
   effort (hours = designer preparation + CPU). *)

type group = Equation_accurate | Equation_fast | Astrx_oblx

type point = {
  tool : string;
  group : group;
  complexity : float;
  error_pct : float;
  effort_hours : float;
  note : string;
}

let group_name = function
  | Equation_accurate -> "eqn-based (accurate, high effort)"
  | Equation_fast -> "eqn-based (fast, low accuracy)"
  | Astrx_oblx -> "ASTRX/OBLX"

(* Right-hand group of Fig. 3: accurate because a designer spent
   weeks..years deriving equations. Effort includes the paper's stated
   conversion (1000 lines of circuit-specific code ~ 1 month). *)
let literature =
  [
    {
      tool = "OPASYN";
      group = Equation_accurate;
      complexity = 18.0;
      error_pct = 10.0;
      effort_hours = 480.0;
      note = "weeks of equation derivation for a textbook op-amp [7]";
    };
    {
      tool = "OASYS";
      group = Equation_accurate;
      complexity = 25.0;
      error_pct = 8.0;
      effort_hours = 960.0;
      note = "hierarchical plans; months per style [5]";
    };
    {
      tool = "industrial eqn-based";
      group = Equation_accurate;
      complexity = 40.0;
      error_pct = 15.0;
      effort_hours = 4000.0;
      note = "designer-years for an industrial cell [3]";
    };
    {
      tool = "ARIADNE";
      group = Equation_accurate;
      complexity = 22.0;
      error_pct = 20.0;
      effort_hours = 700.0;
      note = "symbolic simulation assists derivation [4]";
    };
    {
      tool = "STAIC";
      group = Equation_fast;
      complexity = 20.0;
      error_pct = 100.0;
      effort_hours = 40.0;
      note = "reduced preparation, reduced accuracy [6]";
    };
    {
      tool = "knowledge-based (Sheu)";
      group = Equation_fast;
      complexity = 12.0;
      error_pct = 200.0;
      effort_hours = 24.0;
      note = "first-order plans only [9]";
    };
  ]
