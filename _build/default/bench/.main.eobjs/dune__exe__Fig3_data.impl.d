bench/fig3_data.ml:
