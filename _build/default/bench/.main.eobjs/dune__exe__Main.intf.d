bench/main.mli:
