bench/main.ml: Analyze Array Awe Baselines Bechamel Benchmark Core Fig3_data Float Hashtbl Int List Measure Mna Netlist Option Printf Staged String Suite Sys Test Time Toolkit Unix
