bin/suite_runner.mli:
