bin/suite_runner.ml: Array Core List Netlist Printf String Suite Sys
