bin/astrx.mli:
