bin/astrx.ml: Arg Cmd Cmdliner Core Format List Option Printf String Suite Term
