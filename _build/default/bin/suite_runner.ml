(* Run the full benchmark suite sequentially and print a summary — a
   lighter-weight sibling of bench/main.exe for interactive use:

   suite_runner [seed [moves]]
*)

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1 in
  let moves = if Array.length Sys.argv > 2 then Some (int_of_string Sys.argv.(2)) else None in
  Printf.printf "%-22s %8s %8s %10s %8s %s\n" "circuit" "cost" "evals" "ms/eval" "time" "unmet";
  List.iter
    (fun (e : Suite.Ckts.entry) ->
      if e.synthesized then begin
        match Core.Compile.compile_source e.source with
        | Error msg -> Printf.printf "%-22s COMPILE FAIL: %s\n%!" e.name msg
        | Ok p ->
            let r = Core.Oblx.synthesize ~seed ?moves p in
            let unmet =
              List.filter_map
                (fun (s : Core.Problem.spec) ->
                  match List.assoc s.Core.Problem.spec_name r.Core.Oblx.predicted with
                  | None -> Some s.spec_name
                  | Some v -> begin
                      match s.kind with
                      | Netlist.Ast.Constraint_ge when v < s.good *. 0.98 -> Some s.spec_name
                      | Netlist.Ast.Constraint_le when v > s.good *. 1.02 -> Some s.spec_name
                      | Netlist.Ast.Constraint_ge | Netlist.Ast.Constraint_le
                      | Netlist.Ast.Objective_max | Netlist.Ast.Objective_min ->
                          None
                    end)
                p.Core.Problem.specs
            in
            Printf.printf "%-22s %8.3g %8d %10.2f %7.1fs %s\n%!" e.name r.best_cost r.evals
              r.eval_time_ms r.run_time_s (String.concat "," unmet)
      end)
    Suite.Ckts.all
