(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md section 4 for the experiment index).

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1       -- one experiment
     dune exec bench/main.exe -- table2 --runs 3 --moves 40000 --jobs 4
     dune exec bench/main.exe -- perf-parallel --moves 2000    -- speedup JSON

   All runs are seeded; output is deterministic for a given build (wall
   clocks aside). --jobs spreads multi-start runs across OCaml domains
   without changing any reported design (see docs/PARALLEL.md). *)

let runs = ref 2
let moves : int option ref = ref None
let jobs : int option ref = ref None

(* --floor F: perf-parallel exits 1 when the jobs=4 speedup falls below
   F scaled by the host's core count (CI's regression gate). *)
let floor_opt : float option ref = ref None
let base_seed = 1988 (* a fixed arbitrary seed *)

(* --runstamp S: besides the mutable <name>-latest.json, every artifact
   write leaves an immutable copy <name>-S.json, so successive bench runs
   can be diffed (scripts/bench_compare.sh) without clobbering history. *)
let runstamp : string option ref = ref None

let stamped_path path stamp =
  let base = Filename.basename path in
  let name =
    match Filename.chop_suffix_opt ~suffix:"-latest.json" base with
    | Some n -> n
    | None -> Filename.remove_extension base
  in
  Filename.concat (Filename.dirname path) (name ^ "-" ^ stamp ^ ".json")

(* For artifacts streamed by hand (perf-parallel): copy the finished file. *)
let stamp_copy path =
  match !runstamp with
  | None -> ()
  | Some stamp ->
      let dst = stamped_path path stamp in
      let ic = open_in_bin path in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin dst in
      output_string oc body;
      close_out oc;
      Printf.printf "wrote %s\n" dst

let write_artifact path json =
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path;
  stamp_copy path

let sep title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let compile_exn (e : Suite.Ckts.entry) =
  match Core.Compile.compile_source e.source with
  | Ok p -> p
  | Error msg -> failwith (e.name ^ ": " ^ msg)

let fmt_opt = function Some v -> Core.Report.eng v | None -> "fail"
let fmt_res = function Some (Ok v) -> Core.Report.eng v | Some (Error _) -> "fail" | None -> "-"

(* ------------------------------------------------------------------ *)
(* Table 1: result of ASTRX's analyses                                 *)
(* ------------------------------------------------------------------ *)

let table1 () =
  sep "TABLE 1 -- Result of ASTRX's analyses (ours vs paper)";
  Printf.printf "%-22s | %15s | %9s | %11s | %11s | %12s | %15s\n" "circuit" "input lines"
    "user vars" "node vars" "cost terms" "'lines of C'" "bias nodes/elems";
  Printf.printf "%-22s | %15s | %9s | %11s | %11s | %12s | %15s\n" "" "ours (paper)"
    "ours(ppr)" "ours (ppr)" "ours (ppr)" "ours (ppr)" "ours (paper)";
  Printf.printf "%s\n" (String.make 120 '-');
  List.iter
    (fun (e : Suite.Ckts.entry) ->
      let p = compile_exn e in
      let a = p.Core.Problem.analysis in
      let nl, sl, uv, nv, terms, locc, bn, be =
        match List.assoc_opt e.name Suite.Ckts.paper_table1 with
        | Some t -> t
        | None -> (0, 0, 0, 0, 0, 0, 0, 0)
      in
      Printf.printf
        "%-22s | %3d+%-2d (%d+%d) | %3d (%2d) | %4d (%2d) | %4d (%3d) | %5d (%4d) | %d,%d (%d,%d)\n"
        e.name a.Core.Problem.input_netlist_lines a.input_synth_lines nl sl a.n_user_vars uv
        a.n_node_vars nv a.n_cost_terms terms a.lines_of_c locc a.bias_nodes a.bias_elements bn
        be;
      List.iter
        (fun (j, n_, el) ->
          Printf.printf "%22s   AWE circuit %-8s: %d nodes, %d elements\n" "" j n_ el)
        a.awe_circuits)
    Suite.Ckts.all;
  print_newline ();
  print_endline
    "Notes: our synth-specific line counts are lower than the paper's because\n\
     one .var card carries range+grid together; 'lines of C' uses the\n\
     deterministic size metric of DESIGN.md (a closure-graph evaluator\n\
     replaces the emitted C of the original)."

(* ------------------------------------------------------------------ *)
(* Table 2: synthesis results                                          *)
(* ------------------------------------------------------------------ *)

let synthesize_best (e : Suite.Ckts.entry) =
  let p = compile_exn e in
  let best, all = Core.Oblx.best_of ~seed:base_seed ?moves:!moves ?jobs:!jobs ~runs:!runs p in
  (p, best, all)

let table2_circuit (e : Suite.Ckts.entry) =
  let p, best, all = synthesize_best e in
  let sims =
    match Core.Verify.simulate_specs p best.Core.Oblx.final with
    | Ok s -> Some s
    | Error msg ->
        Printf.printf "  !! verification failed: %s\n" msg;
        None
  in
  Printf.printf "\n-- %s  (%d runs x %d moves; best cost %.4g; %.2f ms/eval; %.0f s/run)\n" e.name
    (List.length all) best.moves best.best_cost best.eval_time_ms best.run_time_s;
  Printf.printf "   %-10s %-12s %23s %26s\n" "spec" "goal" "ours: OBLX / Sim" "paper: OBLX / Sim";
  List.iter
    (fun (s : Core.Problem.spec) ->
      let name = s.Core.Problem.spec_name in
      let pred = List.assoc name best.predicted in
      let sim = Option.map (List.assoc name) sims in
      let paper =
        match List.find_opt (fun (n, _, _, _) -> n = name) e.paper_table2 with
        | Some (_, _, po, ps) ->
            Printf.sprintf "%10s / %-10s" (Core.Report.eng po) (Core.Report.eng ps)
        | None -> "-"
      in
      Printf.printf "   %-10s %-12s %10s / %-10s %26s\n" name (Core.Report.goal_text s)
        (fmt_opt pred) (fmt_res sim) paper)
    p.Core.Problem.specs;
  (match sims with
  | None -> ()
  | Some sims ->
      let worst = ref 0.0 in
      List.iter
        (fun (name, sim) ->
          match (sim, List.assoc name best.predicted) with
          | Ok sv, Some pv when Float.abs sv > 1e-12 ->
              worst := Float.max !worst (Float.abs (pv -. sv) /. Float.abs sv)
          | (Ok _ | Error _), _ -> ())
        sims;
      Printf.printf "   worst OBLX-vs-simulation discrepancy: %.2f%%\n" (100.0 *. !worst));
  (* The paper's SR rows compare OBLX's hand expression against a transient
     simulation; do the same when the circuit has an "sr" spec. *)
  (match List.assoc_opt "sr" best.predicted with
  | Some (Some sr_expr) when sr_expr > 0.0 -> begin
      let tstop = 10.0 *. 2.5 /. sr_expr in
      match
        Core.Verify.transient_slew p best.Core.Oblx.final ~tf:"tf" ~vstep:2.0 ~tstop
          ~dt:(tstop /. 600.0)
      with
      | Ok sr_tran ->
          Printf.printf "   sr cross-check: expression %s vs transient simulation %s\n"
            (Core.Report.eng sr_expr) (Core.Report.eng sr_tran)
      | Error _ -> ()
    end
  | Some (Some _) | Some None | None -> ());
  (p, best)

let table2 () =
  sep "TABLE 2 -- Basic synthesis results (goal : OBLX prediction / simulation)";
  List.iter
    (fun (e : Suite.Ckts.entry) ->
      if e.synthesized && e.name <> "novel-folded-cascode" then ignore (table2_circuit e))
    Suite.Ckts.all

(* ------------------------------------------------------------------ *)
(* Table 3: novel folded cascode vs manual design                      *)
(* ------------------------------------------------------------------ *)

let apply_sizing st sizes =
  Array.iteri
    (fun i info ->
      match info with
      | Core.State.User { name; _ } -> begin
          match List.assoc_opt name sizes with
          | Some v -> Core.State.set_initial st i v
          | None -> ()
        end
      | Core.State.Node_voltage _ -> ())
    st.Core.State.info

let table3 () =
  sep "TABLE 3 -- Novel folded cascode: manual design vs automatic re-synthesis";
  let e = Option.get (Suite.Ckts.find "novel-folded-cascode") in
  let p = compile_exn e in
  let manual = Core.State.snapshot p.Core.Problem.state0 in
  apply_sizing manual Suite.Novel_folded_cascode.manual_sizing;
  let manual_vals =
    match Core.Verify.simulate_specs p manual with
    | Ok s -> s
    | Error msg -> failwith ("manual design: " ^ msg)
  in
  let best, _ = Core.Oblx.best_of ~seed:(base_seed + 7) ?moves:!moves ?jobs:!jobs ~runs:!runs p in
  let sims =
    match Core.Verify.simulate_specs p best.Core.Oblx.final with Ok s -> Some s | Error _ -> None
  in
  Printf.printf "%-10s %12s %24s %32s\n" "spec" "manual" "ours: OBLX / Sim"
    "paper: man. | OBLX / Sim";
  List.iter
    (fun (s : Core.Problem.spec) ->
      let name = s.Core.Problem.spec_name in
      let man =
        match List.assoc name manual_vals with Ok v -> Core.Report.eng v | Error _ -> "-"
      in
      let paper =
        match
          List.find_opt
            (fun (n, _, _, _) -> n = name)
            Suite.Novel_folded_cascode.paper_table3
        with
        | Some (_, pm, po, ps) ->
            Printf.sprintf "%8s | %8s / %-8s" (Core.Report.eng pm) (Core.Report.eng po)
              (Core.Report.eng ps)
        | None -> "-"
      in
      Printf.printf "%-10s %12s %11s / %-10s %34s\n" name man
        (fmt_opt (List.assoc name best.predicted))
        (fmt_res (Option.map (List.assoc name) sims))
        paper)
    p.Core.Problem.specs;
  Printf.printf "run: %d moves, %.2f ms/eval, %.0f s\n" best.moves best.eval_time_ms
    best.run_time_s

(* ------------------------------------------------------------------ *)
(* Fig 2: KCL discrepancy during optimization                          *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  sep "FIG 2 -- Discrepancy from KCL-correct voltages during optimization";
  let e = Option.get (Suite.Ckts.find "simple-ota") in
  let p = compile_exn e in
  let r = Core.Oblx.synthesize ~seed:(base_seed + 2) ?moves:!moves p in
  Printf.printf "%10s %14s %14s %12s\n" "moves" "max |KCL| (A)" "rel KCL" "temperature";
  let every = Int.max 1 (List.length r.Core.Oblx.trace / 40) in
  List.iteri
    (fun k tp ->
      if k mod every = 0 then
        Printf.printf "%10d %14.4g %14.4g %12.4g\n" tp.Core.Oblx.tp_moves tp.tp_max_kcl_abs
          tp.tp_max_kcl_rel tp.tp_temperature)
    r.trace;
  (match Core.Verify.kcl_abs_error p r.final with
  | Ok err -> Printf.printf "after NR polish (final design): max |KCL| = %.3g A\n" err
  | Error msg -> Printf.printf "polish check failed: %s\n" msg);
  match Core.Verify.bias_voltage_error p r.final with
  | Ok err -> Printf.printf "final |V - V_newton| = %.3g V\n" err
  | Error msg -> Printf.printf "voltage check failed: %s\n" msg

(* ------------------------------------------------------------------ *)
(* Fig 3: complexity / error / first-time effort                       *)
(* ------------------------------------------------------------------ *)

let count_devices (p : Core.Problem.t) =
  Array.fold_left
    (fun acc (e : Netlist.Circuit.element) ->
      match e with
      | Netlist.Circuit.Mosfet _ | Netlist.Circuit.Bjt _ -> acc + 1
      | Netlist.Circuit.Resistor _ | Netlist.Circuit.Capacitor _ | Netlist.Circuit.Inductor _
      | Netlist.Circuit.Vsource _ | Netlist.Circuit.Isource _ | Netlist.Circuit.Vcvs _
      | Netlist.Circuit.Vccs _ | Netlist.Circuit.Cccs _ | Netlist.Circuit.Ccvs _ ->
          acc)
    0 p.Core.Problem.bias.Netlist.Circuit.elements

let fig3 () =
  sep "FIG 3 -- Complexity, prediction error, and first-time design effort";
  Printf.printf "%-26s %-34s %10s %8s %10s\n" "tool" "group" "complexity" "err %" "effort(h)";
  List.iter
    (fun (pt : Fig3_data.point) ->
      Printf.printf "%-26s %-34s %10.0f %8.0f %10.0f  (%s)\n" pt.tool
        (Fig3_data.group_name pt.group) pt.complexity pt.error_pct pt.effort_hours pt.note)
    Fig3_data.literature;
  (match Baselines.Eq_sizer.prediction_error () with
  | Ok rows ->
      let worst = List.fold_left (fun acc (_, _, _, rel) -> Float.max acc rel) 0.0 rows in
      Printf.printf "%-26s %-34s %10.0f %8.0f %10.0f  (measured: square-law sizer on p1u2)\n"
        "eq-baseline (measured)"
        (Fig3_data.group_name Fig3_data.Equation_fast)
        13.0 (100.0 *. worst) 8.0;
      List.iter
        (fun (name, eq, sim, rel) ->
          Printf.printf "%30s %s: equations %s vs simulation %s (%.0f%% off)\n" "" name
            (Core.Report.eng eq) (Core.Report.eng sim) (100.0 *. rel))
        rows
  | Error msg -> Printf.printf "eq-baseline failed: %s\n" msg);
  (* Measured ASTRX/OBLX points. Effort = the paper's "afternoon" of
     preparation (4 h) + measured CPU time. *)
  List.iter
    (fun name ->
      let e = Option.get (Suite.Ckts.find name) in
      let p, best, all = synthesize_best e in
      match Core.Verify.simulate_specs p best.Core.Oblx.final with
      | Error msg -> Printf.printf "%s: verify failed (%s)\n" name msg
      | Ok sims ->
          let worst = ref 0.0 in
          List.iter
            (fun (n, sim) ->
              match (sim, List.assoc n best.predicted) with
              | Ok sv, Some pv when Float.abs sv > 1e-12 ->
                  worst := Float.max !worst (Float.abs (pv -. sv) /. Float.abs sv)
              | (Ok _ | Error _), _ -> ())
            sims;
          let cpu_h =
            List.fold_left (fun acc (r : Core.Oblx.result) -> acc +. r.run_time_s) 0.0 all
            /. 3600.0
          in
          let complexity = float_of_int (count_devices p + Core.Problem.n_user_vars p) in
          Printf.printf "%-26s %-34s %10.0f %8.1f %10.1f  (measured)\n" ("ASTRX/OBLX " ^ name)
            (Fig3_data.group_name Fig3_data.Astrx_oblx)
            complexity (100.0 *. !worst) (4.0 +. cpu_h))
    [ "simple-ota"; "ota" ];
  print_newline ();
  print_endline
    "Shape to check against the paper's Fig. 3: the equation-based groups trade\n\
     months-to-years of first-time effort for accuracy (right group) or give up\n\
     accuracy for speed (left group); ASTRX/OBLX sits at hours of effort with\n\
     simulation-grade prediction accuracy."

(* ------------------------------------------------------------------ *)
(* Section VI model-comparison experiment                              *)
(* ------------------------------------------------------------------ *)

let models () =
  sep "MODEL EXPERIMENT -- same Simple OTA, three model/process combinations";
  let combos =
    [
      ("BSIM / 2u", "p2u", "nmos_bsim", "pmos_bsim", 580.0);
      ("BSIM / 1.2u", "p1u2", "nmos_bsim", "pmos_bsim", 300.0);
      ("MOS3 / 1.2u", "p1u2", "nmos", "pmos", 140.0);
    ]
  in
  Printf.printf "%-14s %14s %14s %10s %10s\n" "model/process" "area (um^2)" "paper area"
    "gain dB" "ugf";
  List.iter
    (fun (label, process, nmos, pmos, paper_area) ->
      let src = Suite.Simple_ota.source_with ~process ~nmos ~pmos in
      match Core.Compile.compile_source src with
      | Error msg -> Printf.printf "%-14s FAILED: %s\n" label msg
      | Ok p ->
          let best, _ =
            Core.Oblx.best_of ~seed:(base_seed + 11) ?moves:!moves ?jobs:!jobs ~runs:!runs p
          in
          let get n = List.assoc n best.Core.Oblx.predicted in
          Printf.printf "%-14s %14s %14s %10s %10s\n%!" label
            (fmt_opt (get "area"))
            (Core.Report.eng paper_area)
            (fmt_opt (get "adm"))
            (fmt_opt (get "ugf")))
    combos;
  print_newline ();
  print_endline
    "Claim under test: the same specifications under different encapsulated\n\
     device models lead to substantially different minimized areas -- the 2u\n\
     process costs the most area, and the two 1.2u designs still differ\n\
     because the models disagree (the paper saw 580/300/140 um^2)."

(* ------------------------------------------------------------------ *)
(* Ablation: the claims behind the formulation choices                 *)
(* ------------------------------------------------------------------ *)

let ablation () =
  sep "ABLATION -- starting-point sensitivity and relaxed-dc cost";
  let e = Option.get (Suite.Ckts.find "simple-ota") in
  let p = compile_exn e in
  print_endline "(a) DELIGHT.SPICE-style local optimization from random starting points:";
  let study = Baselines.Local_opt.starting_point_study ~runs:8 ~max_evals:250 p ~seed:77 in
  List.iteri
    (fun k (r : Baselines.Local_opt.run) ->
      Printf.printf "    start %d: cost %8.3f -> %8.3f (%d evals)%s\n" k r.start_cost
        r.final_cost r.evals
        (if r.constraints_met then "  [met all constraints]" else ""))
    study;
  let ok = List.length (List.filter (fun r -> r.Baselines.Local_opt.constraints_met) study) in
  Printf.printf "    %d/%d local runs met every constraint\n" ok (List.length study);
  print_endline "(b) OBLX annealing (5 independent restarts, constraints met at the end?):";
  let _, restarts = Core.Oblx.best_of ~seed:500 ?moves:!moves ?jobs:!jobs ~runs:5 p in
  let anneal_ok = ref 0 in
  List.iteri
    (fun k (r : Core.Oblx.result) ->
      let met =
        List.for_all
          (fun (s : Core.Problem.spec) ->
            match (s.kind, List.assoc s.Core.Problem.spec_name r.Core.Oblx.predicted) with
            | Netlist.Ast.Constraint_ge, Some v -> v >= s.good *. 0.95
            | Netlist.Ast.Constraint_le, Some v -> v <= s.good *. 1.05
            | (Netlist.Ast.Objective_max | Netlist.Ast.Objective_min), Some _ -> true
            | _, None -> false)
          p.Core.Problem.specs
      in
      if met then incr anneal_ok;
      Printf.printf "    restart %d: cost %.4g%s\n" k r.best_cost
        (if met then "  [met all constraints]" else ""))
    restarts;
  Printf.printf "    %d/5 annealing runs met every constraint\n" !anneal_ok;
  print_endline "(c) evaluation cost: relaxed-dc vs full Newton solve per evaluation:";
  let st = Core.State.snapshot p.Core.Problem.state0 in
  ignore (Core.Moves.newton_global p st);
  let w = Core.Weights.create () in
  let time label f =
    let t0 = Unix.gettimeofday () in
    let n = 100 in
    for _ = 1 to n do
      f ()
    done;
    let per = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1000.0 in
    Printf.printf "    %-42s %8.3f ms/eval\n" label per;
    per
  in
  let relaxed = time "relaxed-dc (OBLX evaluation)" (fun () -> ignore (Core.Eval.cost p w st)) in
  let full =
    time "full NR bias solve + same measurement" (fun () ->
        ignore (Core.Moves.newton_global p st);
        ignore (Core.Eval.cost p w st))
  in
  Printf.printf "    relaxed-dc speedup: %.1fx\n" (full /. relaxed)

(* ------------------------------------------------------------------ *)
(* Perf microbenches (Bechamel)                                        *)
(* ------------------------------------------------------------------ *)

let perf () =
  sep "PERF -- Bechamel microbenchmarks (time per run)";
  let e = Option.get (Suite.Ckts.find "simple-ota") in
  let p = compile_exn e in
  let st = Core.State.snapshot p.Core.Problem.state0 in
  ignore (Core.Moves.newton_global p st);
  let w = Core.Weights.create () in
  let value ex = Netlist.Expr.eval (Core.Eval.value_env p st) ex in
  let jig = (List.hd p.Core.Problem.jigs).Core.Problem.jig_circuit in
  let bp = Core.Eval.bias_point p st in
  let ops name = List.assoc_opt name bp.Core.Eval.ops in
  let lin = Mna.Linearize.build ~value ~ops jig in
  let b = Mna.Linearize.excitation_of lin ~src:"vin" in
  let out = Netlist.Circuit.find_node jig "out" in
  let sel = Mna.Linearize.output_vector lin ~pos:out ~neg:None in
  let freqs = Array.init 30 (fun k -> 10.0 ** (3.0 +. (float_of_int k /. 4.0))) in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"astrx-oblx"
      [
        Test.make ~name:"table1:astrx-compile"
          (Staged.stage (fun () -> ignore (Core.Compile.compile_source Suite.Simple_ota.source)));
        Test.make ~name:"table2:oblx-cost-eval"
          (Staged.stage (fun () -> ignore (Core.Eval.cost p w st)));
        Test.make ~name:"fig2:kcl-residuals"
          (Staged.stage (fun () -> ignore (Core.Eval.residuals_quick p st)));
        Test.make ~name:"fig2:newton-step"
          (Staged.stage (fun () -> ignore (Core.Moves.newton_step p st ~damping:1.0)));
        Test.make ~name:"fig3:awe-rom-build"
          (Staged.stage (fun () -> ignore (Awe.Rom.build lin ~b ~sel)));
        Test.make ~name:"fig3:direct-ac-sweep30"
          (Staged.stage (fun () -> ignore (Mna.Ac.sweep lin ~b ~sel freqs)));
        Test.make ~name:"fig3:full-dc-solve"
          (Staged.stage (fun () ->
               ignore (Mna.Dc.solve ~value ~registry:p.Core.Problem.registry jig)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (t :: _) -> Printf.printf "%-40s %12.3f us/run\n" name (t /. 1e3)
      | Some [] | None -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  print_endline
    "\nThe AWE-based OBLX evaluation sits orders of magnitude below a full\n\
     Newton + frequency-sweep simulation of the same jig -- the efficiency\n\
     claim that makes annealing-based synthesis affordable."

(* ------------------------------------------------------------------ *)
(* Perf: domain-parallel multi-start speedup (JSON artifact)            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* Every perf artifact carries the same [baseline] block so results from
   different hosts / configurations are comparable at a glance. *)
let baseline_json ~jobs ~eval_mode =
  Obs.Json.Obj
    [
      ("host", Obs.Json.Str (Unix.gethostname ()));
      ("jobs", Obs.Json.Num (float_of_int jobs));
      ("eval_mode", Obs.Json.Str eval_mode);
    ]

(* One perf-parallel measurement row: a [best_of] at one jobs count, with
   the per-domain GC/claim accounting and the telemetry-merge counters the
   run reported back. *)
type pp_row = {
  pp_jobs : int;
  pp_wall : float;
  pp_cost : float;
  pp_evals : int;
  pp_report : Core.Oblx.parallel_report option;
}

let pp_row_json ~base_wall (r : pp_row) =
  let open Obs.Json in
  let num_i n = Num (float_of_int n) in
  let perf_fields =
    match r.pp_report with
    | None -> []
    | Some (pr : Core.Oblx.parallel_report) ->
        let sum_f f = List.fold_left (fun a d -> a +. f d) 0.0 pr.Core.Oblx.pr_domains in
        let sum_i f = List.fold_left (fun a d -> a + f d) 0 pr.Core.Oblx.pr_domains in
        [
          ( "gc",
            Obj
              [
                ( "minor_collections",
                  num_i (sum_i (fun (d : Core.Oblx.domain_report) -> d.d_minor_collections)) );
                ( "major_collections",
                  num_i (sum_i (fun (d : Core.Oblx.domain_report) -> d.d_major_collections)) );
                ("promoted_words", Num (sum_f (fun (d : Core.Oblx.domain_report) -> d.d_promoted_words)));
                ("minor_words", Num (sum_f (fun (d : Core.Oblx.domain_report) -> d.d_minor_words)));
              ] );
          ( "domains",
            Arr
              (List.map
                 (fun (d : Core.Oblx.domain_report) ->
                   Obj
                     [
                       ("index", num_i d.Core.Oblx.d_index);
                       ("restarts", num_i d.d_restarts);
                       ("wall_s", Num d.d_wall_s);
                       ("minor_collections", num_i d.d_minor_collections);
                       ("major_collections", num_i d.d_major_collections);
                       ("promoted_words", Num d.d_promoted_words);
                       ("minor_words", Num d.d_minor_words);
                     ])
                 pr.Core.Oblx.pr_domains) );
          ( "merge",
            match pr.Core.Oblx.pr_merge with
            | None -> Null
            | Some (m : Obs.Shard.stats) ->
                Obj
                  [
                    ("buffers", num_i m.Obs.Shard.sh_buffers);
                    ("events", num_i m.sh_events);
                    ("batches", num_i m.sh_batches);
                    ("lock_wait_s", Num m.sh_lock_wait_s);
                  ] );
        ]
  in
  Obj
    ([
       ("jobs", num_i r.pp_jobs);
       ("wall_s", Num r.pp_wall);
       ("speedup", Num (base_wall /. r.pp_wall));
       ("best_cost", Num r.pp_cost);
       ("evals", num_i r.pp_evals);
     ]
    @ perf_fields)

(* The previously committed artifact's mean jobs=[j] speedup, for the
   regression line CI prints next to the fresh number. *)
let pp_prior_speedup json ~jobs =
  try
    let sps =
      Obs.Json.to_list (Obs.Json.mem "circuits" json)
      |> List.filter_map (fun c ->
             Obs.Json.to_list (Obs.Json.mem "results" c)
             |> List.find_map (fun r ->
                    if Obs.Json.to_int (Obs.Json.mem "jobs" r) = jobs then
                      Some (Obs.Json.to_float (Obs.Json.mem "speedup" r))
                    else None))
    in
    match sps with
    | [] -> None
    | _ -> Some (List.fold_left ( +. ) 0.0 sps /. float_of_int (List.length sps))
  with Obs.Json.Decode_error _ -> None

let perf_parallel () =
  sep "PERF-PARALLEL -- multi-start speedup vs domain count (table2-class workload)";
  let p_runs = Int.max !runs 4 in
  let p_moves = Option.value !moves ~default:20_000 in
  let host_cores = Domain.recommended_domain_count () in
  let job_counts =
    List.sort_uniq compare [ 1; 2; 4; Core.Oblx.default_jobs () ]
    |> List.filter (fun j -> j >= 1)
  in
  Printf.printf "runs=%d moves=%d host cores=%d\n" p_runs p_moves host_cores;
  (* The committed artifact (if any) before we overwrite it: the CI gate
     prints the prior speedup next to the fresh one. *)
  let artifact_path = "bench/results/perf-parallel-latest.json" in
  let prior =
    if Sys.file_exists artifact_path then begin
      let ic = open_in artifact_path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string s with Ok j -> Some j | Error _ -> None
    end
    else None
  in
  let circuits = [ "simple-ota"; "ota" ] in
  let measured =
    List.map
      (fun name ->
        let e = Option.get (Suite.Ckts.find name) in
        let p = compile_exn e in
        Printf.printf "\n-- %s\n" name;
        Printf.printf "   %6s %10s %10s %12s %10s %10s %10s %10s\n" "jobs" "wall s" "speedup"
          "best cost" "evals" "minor GCs" "major GCs" "lock wait";
        let rows =
          List.map
            (fun j ->
              (* A Stage-level summary sink rides along so the run exercises
                 the real telemetry path (per-restart shard buffers merging
                 at stage boundaries when jobs > 1). Emission never touches
                 the RNG, so results stay bit-identical across job counts. *)
              let summary = Obs.Sink.Summary.create () in
              let obs =
                Obs.Trace.make ~level:Obs.Event.Stage [ Obs.Sink.Summary.sink summary ]
              in
              let report = ref None in
              let t0 = Unix.gettimeofday () in
              let best, all =
                Core.Oblx.best_of ~seed:base_seed ~moves:p_moves ~jobs:j ~runs:p_runs ~obs
                  ~perf:(fun r -> report := Some r)
                  p
              in
              let wall = Unix.gettimeofday () -. t0 in
              let evals = List.fold_left (fun a (r : Core.Oblx.result) -> a + r.evals) 0 all in
              {
                pp_jobs = j;
                pp_wall = wall;
                pp_cost = best.Core.Oblx.best_cost;
                pp_evals = evals;
                pp_report = !report;
              })
            job_counts
        in
        let base_wall = match rows with r :: _ -> r.pp_wall | [] -> 1.0 in
        List.iter
          (fun r ->
            let minor, major, lock_wait =
              match r.pp_report with
              | None -> (0, 0, 0.0)
              | Some pr ->
                  ( List.fold_left
                      (fun a (d : Core.Oblx.domain_report) -> a + d.d_minor_collections)
                      0 pr.Core.Oblx.pr_domains,
                    List.fold_left
                      (fun a (d : Core.Oblx.domain_report) -> a + d.d_major_collections)
                      0 pr.Core.Oblx.pr_domains,
                    match pr.Core.Oblx.pr_merge with
                    | Some m -> m.Obs.Shard.sh_lock_wait_s
                    | None -> 0.0 )
            in
            Printf.printf "   %6d %10.2f %9.2fx %12.4g %10d %10d %10d %9.3fs\n" r.pp_jobs
              r.pp_wall (base_wall /. r.pp_wall) r.pp_cost r.pp_evals minor major lock_wait)
          rows;
        let deterministic =
          match rows with
          | [] -> true
          | r0 :: rest -> List.for_all (fun r -> r.pp_cost = r0.pp_cost) rest
        in
        Printf.printf "   winner identical across job counts: %b\n" deterministic;
        (name, rows, base_wall, deterministic))
      circuits
  in
  (* Recommend the domain count from the measured curve — the smallest
     jobs value achieving the best mean speedup across circuits — instead
     of parroting Domain.recommended_domain_count. *)
  let mean_speedup j =
    let sps =
      List.filter_map
        (fun (_, rows, base_wall, _) ->
          List.find_map
            (fun r -> if r.pp_jobs = j then Some (base_wall /. r.pp_wall) else None)
            rows)
        measured
    in
    match sps with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 sps /. float_of_int (List.length sps)
  in
  let recommended_domains =
    List.fold_left
      (fun (bj, bs) j ->
        let s = mean_speedup j in
        if s > bs +. 1e-9 then (j, s) else (bj, bs))
      (1, mean_speedup 1) job_counts
    |> fst
  in
  Printf.printf "\nrecommended domains (measured): %d\n" recommended_domains;
  (* JSON artifact, M14-harness style: bench/results/<name>-latest.json. *)
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let oc = open_out artifact_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"perf-parallel\",\n";
  out "  \"baseline\": %s,\n"
    (Obs.Json.to_string
       (baseline_json ~jobs:(Core.Oblx.default_jobs ()) ~eval_mode:"incremental"));
  out "  \"seed\": %d,\n" base_seed;
  out "  \"runs\": %d,\n" p_runs;
  out "  \"moves\": %d,\n" p_moves;
  out "  \"host_cores\": %d,\n" host_cores;
  out "  \"recommended_domains\": %d,\n" recommended_domains;
  out "  \"circuits\": [\n";
  List.iteri
    (fun ci (name, rows, base_wall, deterministic) ->
      out "    {\n";
      out "      \"name\": \"%s\",\n" (json_escape name);
      out "      \"deterministic_winner\": %b,\n" deterministic;
      out "      \"results\": [\n";
      List.iteri
        (fun ri r ->
          out "        %s%s\n"
            (Obs.Json.to_string (pp_row_json ~base_wall r))
            (if ri = List.length rows - 1 then "" else ","))
        rows;
      out "      ]\n";
      out "    }%s\n" (if ci = List.length measured - 1 then "" else ","))
    measured;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" artifact_path;
  stamp_copy artifact_path;
  (* Regression gate (--floor F): the requested jobs=4 floor is scaled by
     the cores actually present — on a c-core host, 4 domains can at best
     approach min(4,c)x, so the effective floor is F * min(4,c)/4. *)
  match !floor_opt with
  | None -> ()
  | Some f ->
      let gate_jobs = 4 in
      let effective = f *. float_of_int (Int.min gate_jobs host_cores) /. float_of_int gate_jobs in
      let fresh = mean_speedup gate_jobs in
      (match Option.map (pp_prior_speedup ~jobs:gate_jobs) prior |> Option.join with
      | Some prev ->
          Printf.printf "floor check: jobs=%d mean speedup %.2fx (committed artifact had %.2fx)\n"
            gate_jobs fresh prev
      | None -> Printf.printf "floor check: jobs=%d mean speedup %.2fx (no committed artifact)\n" gate_jobs fresh);
      Printf.printf "floor check: effective floor %.2fx (requested %.2fx scaled for %d host cores)\n"
        effective f host_cores;
      if fresh < effective then begin
        Printf.eprintf "perf-parallel: FAIL: jobs=%d speedup %.2fx below floor %.2fx\n" gate_jobs
          fresh effective;
        exit 1
      end
      else Printf.printf "floor check: PASS\n"

(* ------------------------------------------------------------------ *)
(* Telemetry: annealing observability summary (JSON artifact)           *)
(* ------------------------------------------------------------------ *)

let telemetry () =
  sep "TELEMETRY -- annealing observability summary (simple-ota)";
  let e = Option.get (Suite.Ckts.find "simple-ota") in
  let p = compile_exn e in
  let t_moves = Option.value !moves ~default:20_000 in
  let t_runs = Int.max 1 !runs in
  let summary = Obs.Sink.Summary.create () in
  (* Summary sink at [Moves] level: full per-move statistics, O(1) memory. *)
  let obs = Obs.Trace.make ~level:Obs.Event.Moves [ Obs.Sink.Summary.sink summary ] in
  let t0 = Unix.gettimeofday () in
  let best, _ = Core.Oblx.best_of ~seed:(base_seed + 5) ~moves:t_moves ?jobs:!jobs ~obs ~runs:t_runs p in
  let wall = Unix.gettimeofday () -. t0 in
  let stats = Obs.Sink.Summary.stats summary in
  let moves_per_sec = float_of_int stats.Obs.Sink.Summary.moves /. Float.max 1e-9 wall in
  Printf.printf "runs=%d moves/run=%d wall=%.2fs -> %.0f moves/s (%d evals total)\n" t_runs
    t_moves wall moves_per_sec stats.Obs.Sink.Summary.moves;
  Printf.printf "best cost %.4g; accept ratio %.2f overall\n" best.Core.Oblx.best_cost
    (float_of_int stats.accepted /. float_of_int (Int.max 1 stats.moves));
  Printf.printf "\n  move-class mix:\n";
  List.iter
    (fun (c : Obs.Sink.Summary.class_row) ->
      Printf.printf "  %-10s %7d attempts %7d accepted %6d inapplicable\n" c.cr_name
        c.cr_attempts c.cr_accepted c.cr_inapplicable)
    stats.class_rows;
  Printf.printf "\n  accept ratio by stage (restart 0):\n";
  Printf.printf "  %6s %8s %12s %10s %12s\n" "stage" "moves" "temperature" "accept" "best";
  let r0 =
    List.filter (fun (s : Obs.Sink.Summary.stage_row) -> s.sr_restart = 0) stats.stage_rows
  in
  let every = Int.max 1 (List.length r0 / 20) in
  List.iteri
    (fun i (s : Obs.Sink.Summary.stage_row) ->
      if i mod every = 0 then
        Printf.printf "  %6d %8d %12.4g %10.3f %12.6g\n" s.sr_stage s.sr_moves s.sr_temperature
          s.sr_acceptance s.sr_best)
    r0;
  (* Incremental-evaluation cache behaviour, summed over restarts (the
     Evals events each restart emits per stage; the sink keeps the
     latest per restart). *)
  let ev_sum f = List.fold_left (fun a (_, d) -> a + f d) 0 stats.eval_rows in
  let ev_full = ev_sum (fun (d : Obs.Event.evals_data) -> d.full)
  and ev_incr = ev_sum (fun d -> d.Obs.Event.incr)
  and ev_oh = ev_sum (fun d -> d.Obs.Event.op_hits)
  and ev_om = ev_sum (fun d -> d.Obs.Event.op_misses)
  and ev_rb = ev_sum (fun d -> d.Obs.Event.rom_builds)
  and ev_rr = ev_sum (fun d -> d.Obs.Event.rom_reuses)
  and ev_se = ev_sum (fun d -> d.Obs.Event.spec_evals)
  and ev_sr = ev_sum (fun d -> d.Obs.Event.spec_reuses)
  and ev_rs = ev_sum (fun d -> d.Obs.Event.resyncs)
  and ev_mm = ev_sum (fun d -> d.Obs.Event.resync_mismatches) in
  let pct a b = 100.0 *. float_of_int a /. float_of_int (Int.max 1 (a + b)) in
  Printf.printf "\n  incremental evaluation (all restarts):\n";
  Printf.printf "  %d incremental + %d full evals; op cache %.1f%% hit; ROM reuse %.1f%%; \
                 spec reuse %.1f%%; %d resyncs, %d mismatches\n"
    ev_incr ev_full (pct ev_oh ev_om) (pct ev_rr ev_rb) (pct ev_sr ev_se) ev_rs ev_mm;
  (* JSON artifact next to perf-parallel's. *)
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let path = "bench/results/telemetry-latest.json" in
  let num v = Obs.Json.Num v in
  let int v = num (float_of_int v) in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "telemetry");
        ( "baseline",
          baseline_json
            ~jobs:(Option.value !jobs ~default:(Core.Oblx.default_jobs ()))
            ~eval_mode:"incremental" );
        ("circuit", Obs.Json.Str "simple-ota");
        ("seed", int (base_seed + 5));
        ("runs", int t_runs);
        ("moves_per_run", int t_moves);
        ("wall_s", num wall);
        ("moves_per_sec", num moves_per_sec);
        ("best_cost", num best.Core.Oblx.best_cost);
        ( "evals",
          Obs.Json.Obj
            [
              ("full", int ev_full);
              ("incr", int ev_incr);
              ("op_hits", int ev_oh);
              ("op_misses", int ev_om);
              ("rom_builds", int ev_rb);
              ("rom_reuses", int ev_rr);
              ("spec_evals", int ev_se);
              ("spec_reuses", int ev_sr);
              ("resyncs", int ev_rs);
              ("resync_mismatches", int ev_mm);
            ] );
        ( "classes",
          Obs.Json.Arr
            (List.map
               (fun (c : Obs.Sink.Summary.class_row) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str c.cr_name);
                     ("attempts", int c.cr_attempts);
                     ("accepted", int c.cr_accepted);
                     ("inapplicable", int c.cr_inapplicable);
                   ])
               stats.class_rows) );
        ( "stages",
          Obs.Json.Arr
            (List.map
               (fun (s : Obs.Sink.Summary.stage_row) ->
                 Obs.Json.Obj
                   [
                     ("restart", int s.sr_restart);
                     ("stage", int s.sr_stage);
                     ("moves", int s.sr_moves);
                     ("temperature", num s.sr_temperature);
                     ("acceptance", num s.sr_acceptance);
                     ("cost", num s.sr_cost);
                     ("best", num s.sr_best);
                   ])
               stats.stage_rows) );
      ]
  in
  write_artifact path json

(* ------------------------------------------------------------------ *)
(* Perf-incremental: move-scoped evaluation vs full recompute           *)
(* ------------------------------------------------------------------ *)

let perf_incremental () =
  sep "PERF-INCREMENTAL -- move-scoped evaluation vs full recompute";
  let n_moves = Option.value !moves ~default:4_000 in
  let circuits = [ "simple-ota"; "two-stage"; "folded-cascode"; "ladder-bias-amp" ] in
  Printf.printf "moves=%d (uniform single-variable perturbation walk, ~50%% undone)\n" n_moves;
  (* The walk mirrors the annealer's dominant move: perturb one uniformly
     chosen variable, evaluate the cost, undo about half the moves. Both
     evaluators see the identical state sequence (same RNG seed), so the
     running cost sum must agree bit for bit. *)
  let walk p (eval_fn : string -> Core.State.t -> float) =
    let st = Core.State.snapshot p.Core.Problem.state0 in
    let rng = Anneal.Rng.create (base_seed + 17) in
    let n = Core.State.n_vars st in
    let acc = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n_moves do
      let v = Anneal.Rng.int rng n in
      let cls =
        match st.Core.State.info.(v) with
        | Core.State.User _ -> "user-var"
        | Core.State.Node_voltage _ -> "node-v"
      in
      let prev = st.Core.State.values.(v) in
      st.Core.State.values.(v) <-
        Core.State.clamp st v
          (prev +. ((Anneal.Rng.float rng -. 0.5) *. (Float.abs prev +. 0.1)));
      acc := !acc +. eval_fn cls st;
      if Anneal.Rng.bool rng then st.Core.State.values.(v) <- prev
    done;
    (Unix.gettimeofday () -. t0, !acc)
  in
  let measured =
    List.map
      (fun name ->
        let e = Option.get (Suite.Ckts.find name) in
        let p = compile_exn e in
        let w = Core.Weights.create () in
        let full_wall, full_acc =
          walk p (fun _ st -> (Core.Eval.cost p w st).Core.Eval.total)
        in
        let ss = Core.Eval.Incr.create p in
        let incr_wall, incr_acc =
          walk p (fun cls st ->
              Core.Eval.Incr.set_class ss cls;
              Core.Eval.Incr.cost_scalar ss w st)
        in
        let identical =
          Int64.equal (Int64.bits_of_float full_acc) (Int64.bits_of_float incr_acc)
        in
        let s = Core.Eval.Incr.stats ss in
        let rate wall = float_of_int n_moves /. Float.max 1e-9 wall in
        let speedup = full_wall /. Float.max 1e-9 incr_wall in
        Printf.printf "\n-- %s (%d vars)\n" name (Core.State.n_vars p.Core.Problem.state0);
        Printf.printf "   full        %8.0f moves/s (%.2f s)\n" (rate full_wall) full_wall;
        Printf.printf "   incremental %8.0f moves/s (%.2f s)  -> %.2fx\n" (rate incr_wall)
          incr_wall speedup;
        Printf.printf "   walk cost sum bit-identical: %b\n" identical;
        let pct a b = 100.0 *. float_of_int a /. float_of_int (Int.max 1 (a + b)) in
        Printf.printf
          "   op cache %.1f%% hit; ROM reuse %.1f%%; spec reuse %.1f%%; %d resyncs, %d \
           mismatches\n"
          (pct s.Core.Eval.Incr.op_hits s.Core.Eval.Incr.op_misses)
          (pct s.Core.Eval.Incr.rom_reuses s.Core.Eval.Incr.rom_builds)
          (pct s.Core.Eval.Incr.spec_reuses s.Core.Eval.Incr.spec_evals)
          s.Core.Eval.Incr.resyncs s.Core.Eval.Incr.resync_mismatches;
        List.iter
          (fun (c : Core.Eval.Incr.class_row) ->
            Printf.printf "   class %-9s %6d evals, %.2f dirty vars/eval\n" c.cr_class
              c.cr_evals
              (float_of_int c.cr_dirty_vars /. float_of_int (Int.max 1 c.cr_evals)))
          s.Core.Eval.Incr.by_class;
        if not identical then failwith (name ^ ": incremental walk diverged from full");
        if s.Core.Eval.Incr.resync_mismatches > 0 then
          failwith (name ^ ": resync caught a divergence");
        (name, full_wall, incr_wall, speedup, identical, s))
      circuits
  in
  (* Probed walk: the annealer's batched tournament. Each decision screens
     [probe_batch] candidate perturbations with the low-rank probe
     evaluator against the retained factorization, then confirms only the
     screened winner through the exact incremental path. Every candidate
     counts as a move — that is the throughput the annealer sees. The
     timed pass does no verification; an untimed replay of the identical
     trajectory (same seed, fresh session) re-confirms every decision
     against the full evaluator bit for bit, and the two walks' running
     cost sums must agree exactly. *)
  let probe_batch = Core.Oblx.default_probe_batch in
  let probed_walk p ss w ~verify =
    let st = Core.State.snapshot p.Core.Problem.state0 in
    let rng = Anneal.Rng.create (base_seed + 17) in
    let n = Core.State.n_vars st in
    let acc = ref 0.0 in
    let decisions = Int.max 1 (n_moves / probe_batch) in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to decisions do
      let base = Core.State.snapshot st in
      let best_c = ref Float.infinity and best_st = ref base in
      for _ = 1 to probe_batch do
        Core.State.restore ~from:base st;
        let v = Anneal.Rng.int rng n in
        let prev = st.Core.State.values.(v) in
        st.Core.State.values.(v) <-
          Core.State.clamp st v
            (prev +. ((Anneal.Rng.float rng -. 0.5) *. (Float.abs prev +. 0.1)));
        let c = Core.Eval.Incr.probe_cost ss w st in
        if c < !best_c then begin
          best_c := c;
          best_st := Core.State.snapshot st
        end
      done;
      Core.State.restore ~from:!best_st st;
      Core.Eval.Incr.set_class ss "confirm";
      let c = Core.Eval.Incr.cost_scalar ss w st in
      if verify then begin
        let cf = (Core.Eval.cost p w st).Core.Eval.total in
        if not (Int64.equal (Int64.bits_of_float c) (Int64.bits_of_float cf)) then
          failwith "probed confirmation diverged from the full evaluator"
      end;
      acc := !acc +. c;
      (* reject about half the tournaments, like the plain walks *)
      if Anneal.Rng.bool rng then Core.State.restore ~from:base st
    done;
    (Unix.gettimeofday () -. t0, !acc, decisions * probe_batch)
  in
  Printf.printf "\nprobed tournaments: %d candidates screened per exact confirmation\n"
    probe_batch;
  let probed =
    List.map
      (fun (name, full_wall, _, _, _, (incr_s : Core.Eval.Incr.stats)) ->
        let e = Option.get (Suite.Ckts.find name) in
        let p = compile_exn e in
        let w = Core.Weights.create () in
        let ss = Core.Eval.Incr.create p in
        let probed_wall, probed_acc, probed_moves = probed_walk p ss w ~verify:false in
        let sp = Core.Eval.Incr.stats ss in
        (* untimed bitwise verification replay of the same trajectory *)
        let ss_v = Core.Eval.Incr.create p in
        let _, verify_acc, _ = probed_walk p ss_v w ~verify:true in
        let identical =
          Int64.equal (Int64.bits_of_float probed_acc) (Int64.bits_of_float verify_acc)
        in
        if not identical then failwith (name ^ ": timed probed walk diverged from verified replay");
        let full_rate = float_of_int n_moves /. Float.max 1e-9 full_wall in
        let probed_rate = float_of_int probed_moves /. Float.max 1e-9 probed_wall in
        let speedup = probed_rate /. Float.max 1e-9 full_rate in
        (* exact ROM rebuilds per candidate move: batching confirms once
           per tournament, so the exact path refits k times less often *)
        let rb_rate_incr = float_of_int incr_s.Core.Eval.Incr.rom_builds /. float_of_int n_moves in
        let rb_rate_probed =
          float_of_int sp.Core.Eval.Incr.rom_builds /. float_of_int probed_moves
        in
        let rom_builds_drop = rb_rate_incr /. Float.max 1e-12 rb_rate_probed in
        Printf.printf "\n-- %s probed\n" name;
        Printf.printf "   probed      %8.0f moves/s (%.2f s)  -> %.2fx vs full\n" probed_rate
          probed_wall speedup;
        Printf.printf "   verified replay bit-identical: %b\n" identical;
        Printf.printf
          "   %d screens, %d probe refits (%d fresh fallbacks); moments %d reused, %d refreshed\n"
          sp.Core.Eval.Incr.probes sp.Core.Eval.Incr.probe_rom_builds
          sp.Core.Eval.Incr.probe_fallbacks sp.Core.Eval.Incr.mom_reuses
          sp.Core.Eval.Incr.mom_refreshes;
        Printf.printf "   exact rom_builds per 4k moves: %.1f (plain incr %.1f) -> %.1fx drop\n"
          (4000.0 *. rb_rate_probed) (4000.0 *. rb_rate_incr) rom_builds_drop;
        if sp.Core.Eval.Incr.resync_mismatches > 0 then
          failwith (name ^ ": resync caught a divergence on the probed walk");
        (name, probed_wall, probed_moves, probed_rate, speedup, rom_builds_drop, sp))
      measured
  in
  (* End-to-end guard: a real annealing run with the incremental evaluator
     must elect the same winner, bit for bit. *)
  let eq_name = "ladder-bias-amp" in
  let eq_moves = Int.min n_moves 2_000 in
  let eq_p = compile_exn (Option.get (Suite.Ckts.find eq_name)) in
  (* [probe_batch:1]: batched screening deliberately reshapes the
     trajectory, so the winner-identity check runs unbatched *)
  let eq_run inc =
    Core.Oblx.synthesize ~seed:base_seed ~moves:eq_moves ~incremental:inc ~probe_batch:1 eq_p
  in
  let eq_full = eq_run false and eq_incr = eq_run true in
  let eq_identical =
    Int64.equal
      (Int64.bits_of_float eq_full.Core.Oblx.best_cost)
      (Int64.bits_of_float eq_incr.Core.Oblx.best_cost)
    && eq_full.Core.Oblx.accepted = eq_incr.Core.Oblx.accepted
  in
  Printf.printf "\nsynthesize winner (%s, %d moves) bit-identical: %b\n" eq_name eq_moves
    eq_identical;
  if not eq_identical then failwith "synthesize winner differs with incremental evaluation";
  let best_speedup = List.fold_left (fun a (_, _, _, sp, _, _) -> Float.max a sp) 0.0 measured in
  Printf.printf "best circuit speedup: %.2fx\n" best_speedup;
  let best_probed_speedup =
    List.fold_left (fun a (_, _, _, _, sp, _, _) -> Float.max a sp) 0.0 probed
  in
  let best_rom_drop =
    List.fold_left (fun a (_, _, _, _, _, d, _) -> Float.max a d) 0.0 probed
  in
  Printf.printf "best probed speedup vs full: %.2fx (best rom_builds drop %.1fx)\n"
    best_probed_speedup best_rom_drop;
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let path = "bench/results/perf-incremental-latest.json" in
  let num v = Obs.Json.Num v in
  let int v = num (float_of_int v) in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "perf-incremental");
        ("baseline", baseline_json ~jobs:1 ~eval_mode:"incremental");
        ("seed", int (base_seed + 17));
        ("moves", int n_moves);
        ("best_speedup", num best_speedup);
        ("probe_batch", int probe_batch);
        ("best_probed_speedup", num best_probed_speedup);
        ("best_rom_builds_drop", num best_rom_drop);
        ( "synthesize_check",
          Obs.Json.Obj
            [
              ("circuit", Obs.Json.Str eq_name);
              ("moves", int eq_moves);
              ("winner_bit_identical", Obs.Json.Bool eq_identical);
            ] );
        ( "circuits",
          Obs.Json.Arr
            (List.map
               (fun (name, full_wall, incr_wall, speedup, identical, (s : Core.Eval.Incr.stats)) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str name);
                     ("full_wall_s", num full_wall);
                     ("full_moves_per_s", num (float_of_int n_moves /. Float.max 1e-9 full_wall));
                     ("incr_wall_s", num incr_wall);
                     ("incr_moves_per_s", num (float_of_int n_moves /. Float.max 1e-9 incr_wall));
                     ("speedup", num speedup);
                     ("walk_bit_identical", Obs.Json.Bool identical);
                     ("op_hits", int s.op_hits);
                     ("op_misses", int s.op_misses);
                     ("rom_builds", int s.rom_builds);
                     ("rom_reuses", int s.rom_reuses);
                     ("spec_evals", int s.spec_evals);
                     ("spec_reuses", int s.spec_reuses);
                     ("resyncs", int s.resyncs);
                     ("resync_mismatches", int s.resync_mismatches);
                     ( "dirty_hist",
                       Obs.Json.Arr (Array.to_list (Array.map (fun k -> int k) s.dirty_hist)) );
                     ( "classes",
                       Obs.Json.Arr
                         (List.map
                            (fun (c : Core.Eval.Incr.class_row) ->
                              Obs.Json.Obj
                                [
                                  ("name", Obs.Json.Str c.cr_class);
                                  ("evals", int c.cr_evals);
                                  ("dirty_vars", int c.cr_dirty_vars);
                                  ("op_hits", int c.cr_op_hits);
                                  ("op_misses", int c.cr_op_misses);
                                  ("rom_builds", int c.cr_rom_builds);
                                  ("rom_reuses", int c.cr_rom_reuses);
                                ])
                            s.by_class) );
                   ])
               measured) );
        ( "probed",
          Obs.Json.Arr
            (List.map
               (fun
                 ( name,
                   probed_wall,
                   probed_moves,
                   probed_rate,
                   speedup,
                   rom_drop,
                   (s : Core.Eval.Incr.stats) )
               ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str name);
                     ("probed_wall_s", num probed_wall);
                     ("probed_moves", int probed_moves);
                     ("probed_moves_per_s", num probed_rate);
                     ("speedup_vs_full", num speedup);
                     ("rom_builds", int s.rom_builds);
                     ("rom_builds_drop", num rom_drop);
                     ("probes", int s.probes);
                     ("probe_rom_builds", int s.probe_rom_builds);
                     ("probe_fallbacks", int s.probe_fallbacks);
                     ("mom_reuses", int s.mom_reuses);
                     ("mom_refreshes", int s.mom_refreshes);
                     ("resyncs", int s.resyncs);
                     ("resync_mismatches", int s.resync_mismatches);
                   ])
               probed) );
      ]
  in
  write_artifact path json;
  (* Regression gate (--floor F): fail when the best probed-vs-full
     throughput gain falls below F. Unlike perf-parallel's gate this needs
     no host-core scaling — the probed path's win is algorithmic (fewer
     exact evaluations per candidate), not parallelism. *)
  match !floor_opt with
  | None -> ()
  | Some f ->
      Printf.printf "floor check: best probed speedup %.2fx (floor %.2fx)\n" best_probed_speedup f;
      if best_probed_speedup < f then begin
        Printf.eprintf "perf-incremental: FAIL: probed speedup %.2fx below floor %.2fx\n"
          best_probed_speedup f;
        exit 1
      end
      else Printf.printf "floor check: PASS\n"

(* ------------------------------------------------------------------ *)
(* Serve: oblxd job-service throughput and latency (JSON artifact)      *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(Int.min (n - 1) (int_of_float (Float.round (q *. float_of_int (n - 1)))))

let jnum j k = match Obs.Json.mem_opt k j with Some (Obs.Json.Num v) -> Some v | _ -> None
let jstr j k = match Obs.Json.mem_opt k j with Some (Obs.Json.Str s) -> Some s | _ -> None

let serve () =
  sep "SERVE -- oblxd job service: throughput, queue wait, cache, deadlines";
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let socket = "bench/results/serve-bench.sock" in
  let workers = Option.value !jobs ~default:(Core.Oblx.default_jobs ()) in
  let s_moves = Option.value !moves ~default:800 in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      tcp = None;
      auth_token = None;
      max_connections = Serve.Server.default_max_connections;
      idle_timeout_s = Serve.Server.default_idle_timeout_s;
      pool =
        { Serve.Pool.default_config with workers; queue_capacity = 256; state_dir = None };
    }
  in
  (* The daemon runs in-process on its own domain; [ready] fires once the
     socket is listening, so no sleep-and-retry connect dance. *)
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let fail msg =
    (* Leave no daemon behind even when an assertion trips. *)
    ignore (Serve.Client.shutdown ~socket ());
    Domain.join server;
    failwith ("serve bench: " ^ msg)
  in
  let ok = function Ok v -> v | Error e -> fail e in
  let source name = (Option.get (Suite.Ckts.find name)).Suite.Ckts.source in
  let circuits = [ "simple-ota"; "ota" ] in
  let n_jobs = Int.max 50 (25 * List.length circuits) in
  Printf.printf "workers=%d moves/job=%d submissions=%d circuits=%s\n%!" workers s_moves
    n_jobs (String.concat "," circuits);
  let t0 = Unix.gettimeofday () in
  (* A mixed batch: repeated topologies (cache hits), varying seeds and
     priorities. The first job per circuit is the only compile miss. *)
  let ids =
    List.init n_jobs (fun i ->
        let name = List.nth circuits (i mod List.length circuits) in
        ok
          (Serve.Client.submit ~socket
             {
               Serve.Proto.sb_name = name;
               sb_source = source name;
               sb_seed = base_seed + i;
               sb_moves = Some s_moves;
               sb_runs = 1;
               sb_priority = i mod 3;
               sb_deadline_s = None;
               sb_trace = false;
               sb_shard = None;
               sb_sweep = [];
               sb_warm = [];
               sb_spec_overrides = [];
             }))
  in
  let jobs_done = List.map (fun id -> ok (Serve.Client.wait ~socket id)) ids in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun j ->
      match jstr j "state" with
      | Some "done" -> ()
      | s -> fail (Printf.sprintf "job ended %s" (Option.value s ~default:"?")))
    jobs_done;
  let waits =
    List.map (fun j -> Option.value (jnum j "wait_s") ~default:0.0) jobs_done
    |> Array.of_list
  in
  Array.sort compare waits;
  let throughput = float_of_int n_jobs /. wall in
  Printf.printf "completed %d jobs in %.2f s -> %.2f jobs/s on %d worker(s)\n" n_jobs wall
    throughput workers;
  Printf.printf "queue wait: p50 %.3f s, p90 %.3f s, p99 %.3f s\n" (percentile waits 0.50)
    (percentile waits 0.90) (percentile waits 0.99);
  let stats = ok (Serve.Client.stats ~socket ()) in
  let cache = Option.value (Obs.Json.mem_opt "cache" stats) ~default:(Obs.Json.Obj []) in
  let hit_rate = Option.value (jnum cache "hit_rate") ~default:0.0 in
  Printf.printf "compile cache: %.0f hits / %.0f misses (hit rate %.0f%%)\n"
    (Option.value (jnum cache "hits") ~default:0.0)
    (Option.value (jnum cache "misses") ~default:0.0)
    (100.0 *. hit_rate);
  if hit_rate <= 0.0 then fail "cache hit rate is 0 on repeated topologies";
  (* Deadline demo: a job whose move budget cannot finish inside its latency
     bound must come back cut with reason "deadline", within budget + poll
     granularity (256 moves) + CI slack. *)
  let deadline = 0.75 in
  let d_id =
    ok
      (Serve.Client.submit ~socket
         {
           Serve.Proto.sb_name = "simple-ota";
           sb_source = source "simple-ota";
           sb_seed = base_seed;
           sb_moves = Some 10_000_000;
           sb_runs = 1;
           sb_priority = 0;
           sb_deadline_s = Some deadline;
           sb_trace = false;
           sb_shard = None;
           sb_sweep = [];
           sb_warm = [];
           sb_spec_overrides = [];
         })
  in
  let d_job = ok (Serve.Client.wait ~socket d_id) in
  let d_run = Option.value (jnum d_job "run_s") ~default:infinity in
  let d_cut = jstr d_job "cut_reason" in
  Printf.printf "deadline demo: %.2f s budget -> finished in %.2f s, cut_reason=%s\n" deadline
    d_run
    (Option.value d_cut ~default:"none");
  if d_cut <> Some Core.Oblx.deadline_reason then fail "deadline job was not cut by deadline";
  if d_run > deadline +. 3.0 then fail "deadline overrun beyond poll granularity + slack";
  (* Determinism: the same (problem, seed, moves) through the service must
     reproduce the CLI path bit-for-bit — the abort plumbing may not perturb
     the trajectory of a run it never cuts. *)
  let probe = List.hd jobs_done in
  let served_cost = Option.get (jnum probe "best_cost") in
  let p =
    match Core.Compile.compile_source (source "simple-ota") with
    | Ok p -> p
    | Error e -> fail e
  in
  let local, _ = Core.Oblx.best_of ~seed:base_seed ~moves:s_moves ~jobs:1 ~runs:1 p in
  Printf.printf "determinism: served best cost %.17g vs local %.17g -> %s\n" served_cost
    local.Core.Oblx.best_cost
    (if served_cost = local.Core.Oblx.best_cost then "bit-identical" else "MISMATCH");
  if served_cost <> local.Core.Oblx.best_cost then
    fail "served result differs from local best_of";
  ok (Serve.Client.shutdown ~socket ());
  Domain.join server;
  let path = "bench/results/serve-latest.json" in
  let num v = Obs.Json.Num v in
  let int v = num (float_of_int v) in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "serve");
        ( "baseline",
          baseline_json ~jobs:workers
            ~eval_mode:(if cfg.pool.Serve.Pool.incremental then "incremental" else "full") );
        ("workers", int workers);
        ("submissions", int n_jobs);
        ("moves_per_job", int s_moves);
        ("wall_s", num wall);
        ("throughput_jobs_per_s", num throughput);
        ( "queue_wait_s",
          Obs.Json.Obj
            [
              ("p50", num (percentile waits 0.50));
              ("p90", num (percentile waits 0.90));
              ("p99", num (percentile waits 0.99));
            ] );
        ("cache_hit_rate", num hit_rate);
        ( "deadline_demo",
          Obs.Json.Obj
            [
              ("budget_s", num deadline);
              ("run_s", num d_run);
              ("cut_reason", Obs.Json.Str (Option.value d_cut ~default:"none"));
            ] );
        ("deterministic_vs_local", Obs.Json.Bool (served_cost = local.Core.Oblx.best_cost));
      ]
  in
  write_artifact path json

(* ------------------------------------------------------------------ *)
(* Serve-concurrent: the daemon under simultaneous clients             *)
(* ------------------------------------------------------------------ *)

let serve_concurrent () =
  sep "SERVE-CONCURRENT -- oblxd under held connections and parallel clients";
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let socket = "bench/results/serve-concurrent.sock" in
  let workers = Option.value !jobs ~default:(Core.Oblx.default_jobs ()) in
  let s_moves = Option.value !moves ~default:600 in
  let clients = 4 in
  let jobs_per_client = 6 in
  let max_connections = 16 in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      tcp = None;
      auth_token = None;
      max_connections;
      idle_timeout_s = Serve.Server.default_idle_timeout_s;
      pool =
        { Serve.Pool.default_config with workers; queue_capacity = 256; state_dir = None };
    }
  in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let fail msg =
    ignore (Serve.Client.shutdown ~socket ());
    Domain.join server;
    failwith ("serve-concurrent bench: " ^ msg)
  in
  let ok = function Ok v -> v | Error e -> fail e in
  let connect_raw () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  Printf.printf "workers=%d clients=%d jobs/client=%d moves/job=%d cap=%d\n%!" workers
    clients jobs_per_client s_moves max_connections;
  (* Phase A: held idle connections must not serialize other clients. The
     serial accept loop this daemon replaced would hang on the first one. *)
  let held = ref (List.init 8 (fun _ -> connect_raw ())) in
  let lat =
    Array.init 60 (fun _ ->
        let t = Unix.gettimeofday () in
        ignore (ok (Serve.Client.stats ~socket ~timeout_s:5.0 ()));
        Unix.gettimeofday () -. t)
  in
  Array.sort compare lat;
  let lat_p50 = 1000.0 *. percentile lat 0.50 and lat_p99 = 1000.0 *. percentile lat 0.99 in
  Printf.printf "stats latency with 8 idle connections held: p50 %.2f ms, p99 %.2f ms\n"
    lat_p50 lat_p99;
  (* Phase B: fill every slot; the next connection is answered busy. *)
  held := !held @ List.init (max_connections - 8) (fun _ -> connect_raw ());
  let busy_refused =
    match Serve.Client.stats ~socket ~timeout_s:5.0 () with
    | Error e ->
        let has_cap = Serve.Proto.busy_message max_connections = e in
        if not has_cap then fail ("unexpected over-cap error: " ^ e);
        true
    | Ok _ -> fail "over-cap connection was not refused"
  in
  List.iter Unix.close !held;
  held := [];
  (* Closed slots are reclaimed on the server's side of the socket; give the
     reaper a beat before the parallel phase needs them. *)
  let rec await_slot n =
    match Serve.Client.stats ~socket ~timeout_s:5.0 () with
    | Ok _ -> ()
    | Error _ when n > 0 ->
        Unix.sleepf 0.05;
        await_slot (n - 1)
    | Error e -> fail ("slots never freed: " ^ e)
  in
  await_slot 100;
  (* Phase C: parallel clients, each submitting and awaiting its own batch. *)
  let source = (Option.get (Suite.Ckts.find "simple-ota")).Suite.Ckts.source in
  let t0 = Unix.gettimeofday () in
  let client ci =
    List.map
      (fun k ->
        let seed = base_seed + (ci * jobs_per_client) + k in
        match
          Serve.Client.submit ~socket
            {
              Serve.Proto.sb_name = "simple-ota";
              sb_source = source;
              sb_seed = seed;
              sb_moves = Some s_moves;
              sb_runs = 1;
              sb_priority = 0;
              sb_deadline_s = None;
              sb_trace = false;
              sb_shard = None;
              sb_sweep = [];
              sb_warm = [];
              sb_spec_overrides = [];
            }
        with
        | Error e -> Error e
        | Ok id -> Serve.Client.wait ~socket id)
      (List.init jobs_per_client Fun.id)
  in
  let doms = List.init clients (fun ci -> Domain.spawn (fun () -> client ci)) in
  let jobs_done = List.concat_map Domain.join doms |> List.map ok in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun j ->
      match jstr j "state" with
      | Some "done" -> ()
      | s -> fail (Printf.sprintf "job ended %s" (Option.value s ~default:"?")))
    jobs_done;
  let n_jobs = clients * jobs_per_client in
  let throughput = float_of_int n_jobs /. wall in
  Printf.printf "%d clients x %d jobs: %d done in %.2f s -> %.2f jobs/s\n" clients
    jobs_per_client n_jobs wall throughput;
  (* Determinism through the concurrent path: client 0's first job ran with
     [base_seed] and must match the CLI bit for bit. *)
  let served_cost = Option.get (jnum (List.hd jobs_done) "best_cost") in
  let p =
    match Core.Compile.compile_source source with Ok p -> p | Error e -> fail e
  in
  let local, _ = Core.Oblx.best_of ~seed:base_seed ~moves:s_moves ~jobs:1 ~runs:1 p in
  Printf.printf "determinism: served %.17g vs local %.17g -> %s\n" served_cost
    local.Core.Oblx.best_cost
    (if served_cost = local.Core.Oblx.best_cost then "bit-identical" else "MISMATCH");
  if served_cost <> local.Core.Oblx.best_cost then
    fail "served result differs from local best_of";
  let stats = ok (Serve.Client.stats ~socket ()) in
  let conns = Option.value (Obs.Json.mem_opt "connections" stats) ~default:(Obs.Json.Obj []) in
  let cnum k = Option.value (jnum conns k) ~default:0.0 in
  Printf.printf "connections: %.0f served, %.0f rejected (cap %d)\n" (cnum "total")
    (cnum "rejected") max_connections;
  if cnum "rejected" < 1.0 then fail "expected at least one over-cap rejection";
  ok (Serve.Client.shutdown ~socket ());
  Domain.join server;
  let path = "bench/results/serve-concurrent-latest.json" in
  let num v = Obs.Json.Num v in
  let int v = num (float_of_int v) in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "serve-concurrent");
        ( "baseline",
          baseline_json ~jobs:workers
            ~eval_mode:(if cfg.pool.Serve.Pool.incremental then "incremental" else "full") );
        ("workers", int workers);
        ("clients", int clients);
        ("jobs_per_client", int jobs_per_client);
        ("moves_per_job", int s_moves);
        ("max_connections", int max_connections);
        ("held_connections", int 8);
        ( "stats_latency_ms",
          Obs.Json.Obj [ ("p50", num lat_p50); ("p99", num lat_p99) ] );
        ("busy_refused", Obs.Json.Bool busy_refused);
        ("wall_s", num wall);
        ("throughput_jobs_per_s", num throughput);
        ( "connections",
          Obs.Json.Obj
            [
              ("total", num (cnum "total"));
              ("rejected", num (cnum "rejected"));
            ] );
        ("deterministic_vs_local", Obs.Json.Bool true);
      ]
  in
  write_artifact path json

(* ------------------------------------------------------------------ *)
(* Serve-fleet: coordinator + peers over loopback TCP                  *)
(* ------------------------------------------------------------------ *)

let serve_fleet () =
  sep "SERVE-FLEET -- 3 daemons over TCP: scatter/steal/merge + replicated cache";
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let auth = Some "fleet-bench-secret" in
  let workers = Int.max 1 (Option.value !jobs ~default:(Core.Oblx.default_jobs ()) / 3) in
  let s_moves = Option.value !moves ~default:400 in
  (* Boot one daemon: its own pool (kept for post-hoc stats), a Unix
     socket, and a TCP listener on an ephemeral loopback port. *)
  let boot tag fleet =
    let socket = Printf.sprintf "bench/results/serve-fleet-%s.sock" tag in
    let pool =
      Serve.Pool.create
        {
          Serve.Pool.default_config with
          workers;
          queue_capacity = 512;
          state_dir = None;
          fleet = Some fleet;
        }
    in
    let cfg =
      {
        Serve.Server.socket_path = socket;
        tcp = Some ("127.0.0.1", 0);
        auth_token = auth;
        max_connections = 256;
        idle_timeout_s = Serve.Server.default_idle_timeout_s;
        pool = Serve.Pool.default_config;
      }
    in
    let ready_m = Mutex.create () and ready_c = Condition.create () in
    let ready = ref false in
    let port = ref 0 in
    let dom =
      Domain.spawn (fun () ->
          Serve.Server.run
            ~tcp_port:(fun p -> port := p)
            ~ready:(fun () ->
              Mutex.lock ready_m;
              ready := true;
              Condition.signal ready_c;
              Mutex.unlock ready_m)
            ~pool cfg)
    in
    Mutex.lock ready_m;
    while not !ready do
      Condition.wait ready_c ready_m
    done;
    Mutex.unlock ready_m;
    (socket, Printf.sprintf "tcp:127.0.0.1:%d" !port, pool, dom)
  in
  let mk_fleet ?(rpc_timeout_s = 5.0) () =
    Serve.Fleet.create { Serve.Fleet.default_config with auth; rpc_timeout_s }
  in
  (* A coordinates; B and C replicate verdicts to each other and run
     shards for A. Peers are wired after boot (ephemeral ports). The
     short RPC timeout is the steal trigger for the dead-peer phase. *)
  let fleet_a = mk_fleet ~rpc_timeout_s:0.5 () in
  let fleet_b = mk_fleet () in
  let fleet_c = mk_fleet () in
  let sock_a, _tcp_a, _pool_a, dom_a = boot "a" fleet_a in
  let sock_b, tcp_b, _pool_b, dom_b = boot "b" fleet_b in
  let sock_c, tcp_c, _pool_c, dom_c = boot "c" fleet_c in
  Serve.Fleet.set_peers fleet_a [ tcp_b; tcp_c ];
  Serve.Fleet.set_peers fleet_b [ tcp_c ];
  Serve.Fleet.set_peers fleet_c [ tcp_b ];
  let shutdown_all () =
    List.iter
      (fun (sock, dom) ->
        ignore (Serve.Client.shutdown ~socket:sock ?auth ());
        Domain.join dom)
      [ (sock_a, dom_a); (sock_b, dom_b); (sock_c, dom_c) ]
  in
  let fail msg =
    shutdown_all ();
    failwith ("serve-fleet bench: " ^ msg)
  in
  let ok = function Ok v -> v | Error e -> fail e in
  let source = (Option.get (Suite.Ckts.find "simple-ota")).Suite.Ckts.source in
  let submit_spec ?(runs = 1) ?(moves = s_moves) ~name ~source ~seed () =
    {
      Serve.Proto.sb_name = name;
      sb_source = source;
      sb_seed = seed;
      sb_moves = Some moves;
      sb_runs = runs;
      sb_priority = 0;
      sb_deadline_s = None;
      sb_trace = false;
      sb_shard = None;
      sb_sweep = [];
      sb_warm = [];
      sb_spec_overrides = [];
    }
  in
  Printf.printf "daemons=3 workers/daemon=%d moves/job=%d auth=on\n%!" workers s_moves;
  (* Phase A: fleet determinism. One 6-restart job scattered over the
     three boxes must reproduce the single-box answer bit for bit. *)
  let runs = 6 in
  let p = match Core.Compile.compile_source source with Ok p -> p | Error e -> fail e in
  let t0 = Unix.gettimeofday () in
  let local_best, _ = Core.Oblx.best_of ~seed:base_seed ~moves:s_moves ~jobs:1 ~runs p in
  let local_wall = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let id =
    ok
      (Serve.Client.submit ~socket:sock_a ?auth
         (submit_spec ~runs ~name:"simple-ota" ~source ~seed:base_seed ()))
  in
  let j = ok (Serve.Client.wait ~socket:sock_a ?auth id) in
  let fleet_wall = Unix.gettimeofday () -. t0 in
  (match jstr j "state" with
  | Some "done" -> ()
  | s -> fail (Printf.sprintf "fleet job ended %s" (Option.value s ~default:"?")));
  let fleet_cost = Option.get (jnum j "best_cost") in
  Printf.printf "scatter: fleet %.17g vs one box %.17g -> %s (%.2f s vs %.2f s serial)\n"
    fleet_cost local_best.Core.Oblx.best_cost
    (if fleet_cost = local_best.Core.Oblx.best_cost then "bit-identical" else "MISMATCH")
    fleet_wall local_wall;
  if fleet_cost <> local_best.Core.Oblx.best_cost then
    fail "fleet result differs from single-box best_of";
  (* Phase B: kill a peer (replace it with a listener that accepts and
     never answers — a box that died mid-job) and scatter again. The
     shard must be stolen, the answer unchanged. *)
  let dead = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt dead Unix.SO_REUSEADDR true;
  Unix.bind dead (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen dead 4;
  let dead_ep =
    match Unix.getsockname dead with
    | Unix.ADDR_INET (_, port) -> Printf.sprintf "tcp:127.0.0.1:%d" port
    | _ -> fail "no port for the dead peer"
  in
  Serve.Fleet.set_peers fleet_a [ tcp_b; dead_ep ];
  let t0 = Unix.gettimeofday () in
  let id =
    ok
      (Serve.Client.submit ~socket:sock_a ?auth
         (submit_spec ~runs ~name:"simple-ota" ~source ~seed:base_seed ()))
  in
  let j = ok (Serve.Client.wait ~socket:sock_a ?auth id) in
  let steal_wall = Unix.gettimeofday () -. t0 in
  Unix.close dead;
  Serve.Fleet.set_peers fleet_a [ tcp_b; tcp_c ];
  let steal_cost = Option.get (jnum j "best_cost") in
  let steals =
    match Obs.Json.mem_opt "steals" (Serve.Fleet.stats_json fleet_a) with
    | Some (Obs.Json.Num n) -> n
    | _ -> 0.0
  in
  let steal_recovery = Float.max 0.0 (steal_wall -. fleet_wall) in
  Printf.printf
    "steal: dead peer -> %.0f steal(s), still %s, %.2f s (recovery overhead %.2f s)\n"
    steals
    (if steal_cost = local_best.Core.Oblx.best_cost then "bit-identical" else "MISMATCH")
    steal_wall steal_recovery;
  if steal_cost <> local_best.Core.Oblx.best_cost then
    fail "stolen-shard result differs from single-box best_of";
  if steals < 1.0 then fail "expected at least one steal";
  (* Phase C: replicated compile cache. Warm B with every synthesizable
     benchmark (each compile pushes its verdict to C), then drive
     hundreds of concurrent clients at B and C on the same netlists: C's
     first compile of each is a remote hit. *)
  let sources =
    List.filter_map
      (fun e -> if e.Suite.Ckts.synthesized then Some (e.Suite.Ckts.name, e.Suite.Ckts.source) else None)
      Suite.Ckts.all
  in
  List.iter
    (fun (name, source) ->
      let id =
        ok (Serve.Client.submit ~socket:tcp_b ?auth (submit_spec ~name ~source ~seed:base_seed ()))
      in
      ignore (ok (Serve.Client.wait ~socket:tcp_b ?auth id)))
    sources;
  let n_clients = 200 and jobs_per_client = 1 in
  let c_moves = Int.max 50 (s_moves / 4) in
  let results = Array.make (n_clients * jobs_per_client) (Error "never ran") in
  let t0 = Unix.gettimeofday () in
  let client ci =
    for k = 0 to jobs_per_client - 1 do
      let slot = (ci * jobs_per_client) + k in
      let socket = if ci mod 2 = 0 then tcp_b else tcp_c in
      let name, source = List.nth sources (ci mod List.length sources) in
      let t = Unix.gettimeofday () in
      results.(slot) <-
        (match
           Serve.Client.submit ~socket ?auth
             (submit_spec ~moves:c_moves ~name ~source ~seed:(base_seed + slot) ())
         with
        | Error e -> Error e
        | Ok id -> (
            match Serve.Client.wait ~socket ?auth ~timeout_s:300.0 id with
            | Error e -> Error e
            | Ok j -> Ok (j, Unix.gettimeofday () -. t)))
    done
  in
  let threads = List.init n_clients (fun ci -> Thread.create client ci) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let done_jobs =
    Array.to_list results
    |> List.map (function
         | Ok (j, e2e) -> (j, e2e)
         | Error e -> fail ("client job failed: " ^ e))
  in
  List.iter
    (fun (j, _) ->
      match jstr j "state" with
      | Some "done" -> ()
      | s -> fail (Printf.sprintf "client job ended %s" (Option.value s ~default:"?")))
    done_jobs;
  let n_jobs = List.length done_jobs in
  let throughput = float_of_int n_jobs /. wall in
  let e2e = Array.of_list (List.map snd done_jobs) in
  Array.sort compare e2e;
  let queue_wait =
    Array.of_list
      (List.map (fun (j, _) -> Option.value (jnum j "wait_s") ~default:0.0) done_jobs)
  in
  Array.sort compare queue_wait;
  let e2e_p50 = 1000.0 *. percentile e2e 0.50 and e2e_p99 = 1000.0 *. percentile e2e 0.99 in
  let qw_p50 = 1000.0 *. percentile queue_wait 0.50
  and qw_p99 = 1000.0 *. percentile queue_wait 0.99 in
  Printf.printf "%d concurrent clients: %d jobs in %.2f s -> %.1f jobs/s\n" n_clients n_jobs
    wall throughput;
  Printf.printf "  e2e p50 %.1f ms, p99 %.1f ms; queue wait p50 %.1f ms, p99 %.1f ms\n"
    e2e_p50 e2e_p99 qw_p50 qw_p99;
  (* Remote cache hit rate across the two serving daemons: the fraction
     of local compile-cache misses the fleet answered. *)
  let cache_counters sock =
    let st = ok (Serve.Client.stats ~socket:sock ?auth ()) in
    let cache = Option.value (Obs.Json.mem_opt "cache" st) ~default:(Obs.Json.Obj []) in
    let n k = Option.value (jnum cache k) ~default:0.0 in
    (n "remote_hits", n "misses")
  in
  let rh_b, miss_b = cache_counters tcp_b in
  let rh_c, miss_c = cache_counters tcp_c in
  let remote_hits = rh_b +. rh_c and misses = miss_b +. miss_c in
  let remote_hit_rate = if misses > 0.0 then remote_hits /. misses else 0.0 in
  Printf.printf "replicated cache: %.0f remote hits / %.0f local misses -> %.0f%% \n"
    remote_hits misses (100.0 *. remote_hit_rate);
  if remote_hits < 1.0 then fail "expected remote cache hits on the repeated-netlist workload";
  shutdown_all ();
  List.iter
    (fun s -> try Sys.remove s with Sys_error _ -> ())
    [ sock_a; sock_b; sock_c ];
  let path = "bench/results/serve-fleet-latest.json" in
  let num v = Obs.Json.Num v in
  let int v = num (float_of_int v) in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "serve-fleet");
        ("baseline", baseline_json ~jobs:workers ~eval_mode:"incremental");
        ("daemons", int 3);
        ("workers_per_daemon", int workers);
        ("moves_per_job", int s_moves);
        ("scatter_runs", int runs);
        ("deterministic_vs_single_box", Obs.Json.Bool true);
        ("scatter_wall_s", num fleet_wall);
        ("single_box_wall_s", num local_wall);
        ("steals", num steals);
        ("steal_recovery_s", num steal_recovery);
        ("deterministic_after_steal", Obs.Json.Bool true);
        ("clients", int n_clients);
        ("client_jobs", int n_jobs);
        ("client_moves_per_job", int c_moves);
        ("wall_s", num wall);
        ("throughput_jobs_per_s", num throughput);
        ("e2e_ms", Obs.Json.Obj [ ("p50", num e2e_p50); ("p99", num e2e_p99) ]);
        ("queue_wait_ms", Obs.Json.Obj [ ("p50", num qw_p50); ("p99", num qw_p99) ]);
        ( "remote_cache",
          Obs.Json.Obj
            [
              ("remote_hits", num remote_hits);
              ("local_misses", num misses);
              ("hit_rate", num remote_hit_rate);
            ] );
      ]
  in
  write_artifact path json

(* ------------------------------------------------------------------ *)
(* Sweep: batch verdict grid, one compile per (canon, corner)          *)
(* ------------------------------------------------------------------ *)

(* The gates this bench enforces:
   - exactly one compile per distinct (canon, corner) key, asserted from
     both the per-row cache outcomes and the pool's cache counters;
   - the verdict table is byte-identical between a 1-worker and a
     4-worker pool (sweep jobs run their variants sequentially at
     jobs = 1 on one worker, so the table is a deterministic function of
     (source, variants, seed)). *)
let sweep_bench () =
  sep "SWEEP -- batch verdict grid: one compile per (canon, corner) key";
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/results" 0o755 with Unix.Unix_error _ -> ());
  let s_moves = Option.value !moves ~default:300 in
  let name = "simple-ota" in
  let src = (Option.get (Suite.Ckts.find name)).Suite.Ckts.source in
  let corner_names = [ None; Some "slow"; Some "fast"; Some "slow-n-fast-p"; Some "fast-n-slow-p" ] in
  let specsets =
    [
      ("base", []);
      ("tight-ugf", [ ("ugf", 80e6, 1e6) ]);
      ("tight-pwr", [ ("pwr", 0.5e-3, 5e-3) ]);
    ]
  in
  let variants =
    List.concat_map
      (fun c ->
        List.map
          (fun (sn, ov) ->
            {
              Serve.Proto.vr_name = (match c with None -> sn | Some cn -> cn ^ "/" ^ sn);
              vr_corner = c;
              vr_specs = ov;
            })
          specsets)
      corner_names
  in
  let submit =
    {
      Serve.Proto.sb_name = name;
      sb_source = src;
      sb_seed = base_seed;
      sb_moves = Some s_moves;
      sb_runs = 1;
      sb_priority = 0;
      sb_deadline_s = None;
      sb_trace = false;
      sb_shard = None;
      sb_sweep = variants;
      sb_warm = [];
      sb_spec_overrides = [];
    }
  in
  let distinct_keys = List.length corner_names in
  let n_variants = List.length variants in
  Printf.printf "%d variants (%d corners x %d spec sets), %d distinct (canon, corner) keys, \
                 moves/variant=%d\n%!"
    n_variants distinct_keys (List.length specsets) distinct_keys s_moves;
  let run_on ~workers =
    let pool =
      Serve.Pool.create
        { Serve.Pool.default_config with Serve.Pool.workers; queue_capacity = 8; state_dir = None }
    in
    Fun.protect
      ~finally:(fun () -> Serve.Pool.shutdown pool)
      (fun () ->
        let id =
          match Serve.Pool.submit pool submit with
          | Ok id -> id
          | Error e -> failwith ("sweep bench: " ^ e)
        in
        let rec wait () =
          match Serve.Pool.status_json pool id with
          | Error e -> failwith ("sweep bench: " ^ e)
          | Ok j -> begin
              match jstr j "state" with
              | Some ("queued" | "running") ->
                  Unix.sleepf 0.02;
                  wait ()
              | _ -> ()
            end
        in
        wait ();
        let job =
          match Serve.Pool.result_json pool id with
          | Ok j -> j
          | Error e -> failwith ("sweep bench: " ^ e)
        in
        (job, Serve.Pool.stats_json pool))
  in
  let t0 = Unix.gettimeofday () in
  let job1, stats1 = run_on ~workers:1 in
  let job4, _ = run_on ~workers:4 in
  let wall = Unix.gettimeofday () -. t0 in
  let sweep_of job =
    match Obs.Json.mem_opt "sweep" job with
    | Some (Obs.Json.Arr rows) -> rows
    | _ -> failwith "sweep bench: job record carries no sweep table"
  in
  let rows = sweep_of job1 in
  if List.length rows <> n_variants then
    failwith
      (Printf.sprintf "sweep bench: %d rows for %d variants" (List.length rows) n_variants);
  let hits = ref 0 and misses = ref 0 and failures = ref 0 in
  List.iter
    (fun r ->
      (match jstr r "cache" with
      | Some "hit" -> incr hits
      | Some "miss" -> incr misses
      | _ -> incr failures);
      if jnum r "best_cost" = None then incr failures;
      Printf.printf "  %-22s %-14s %-5s cost %-10s ok=%s\n"
        (Option.value (jstr r "variant") ~default:"-")
        (Option.value (jstr r "corner") ~default:"nominal")
        (Option.value (jstr r "cache") ~default:"-")
        (match jnum r "best_cost" with Some c -> Printf.sprintf "%.4g" c | None -> "-")
        (match Obs.Json.mem_opt "ok" r with
        | Some (Obs.Json.Bool b) -> string_of_bool b
        | _ -> "-"))
    rows;
  Printf.printf "compiles: %d misses + %d hits over %d variants in %.2f s\n" !misses !hits
    n_variants wall;
  if !failures > 0 then failwith "sweep bench: a variant failed";
  if !misses <> distinct_keys then
    failwith
      (Printf.sprintf "sweep bench: %d compiles for %d distinct (canon, corner) keys"
         !misses distinct_keys);
  if !hits <> n_variants - distinct_keys then
    failwith
      (Printf.sprintf "sweep bench: expected %d cache hits, saw %d"
         (n_variants - distinct_keys) !hits);
  (* The pool's own counters must agree: the job's compiles are the only
     cache traffic this pool ever saw. *)
  let cache1 = Option.value (Obs.Json.mem_opt "cache" stats1) ~default:(Obs.Json.Obj []) in
  let pool_misses = Option.value (jnum cache1 "misses") ~default:(-1.0) in
  Printf.printf "pool cache counters: %.0f misses (expected %d)\n" pool_misses distinct_keys;
  if pool_misses <> float_of_int distinct_keys then
    failwith "sweep bench: pool cache counters disagree with the per-row outcomes";
  (* Worker-count independence: the rendered verdict tables must be
     byte-identical between the 1- and 4-worker pools. *)
  let table1 = Obs.Json.to_string (Obs.Json.Arr rows) in
  let table4 = Obs.Json.to_string (Obs.Json.Arr (sweep_of job4)) in
  Printf.printf "determinism: 1-worker vs 4-worker verdict table -> %s\n"
    (if table1 = table4 then "byte-identical" else "MISMATCH");
  if table1 <> table4 then failwith "sweep bench: verdict table depends on worker count";
  let path = "bench/results/sweep-latest.json" in
  let num v = Obs.Json.Num v in
  let int v = num (float_of_int v) in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "sweep");
        ("baseline", baseline_json ~jobs:1 ~eval_mode:"incremental");
        ("circuit", Obs.Json.Str name);
        ("variants", int n_variants);
        ("distinct_keys", int distinct_keys);
        ("moves_per_variant", int s_moves);
        ("wall_s", num wall);
        ("compile_misses", int !misses);
        ("compile_hits", int !hits);
        ("one_compile_per_key", Obs.Json.Bool (!misses = distinct_keys));
        ("deterministic_vs_workers", Obs.Json.Bool (table1 = table4));
        ("sweep", Obs.Json.Arr rows);
      ]
  in
  write_artifact path json

(* ------------------------------------------------------------------ *)
(* Warm-start: corpus-seeded restarts vs cold (the resynthesize path)  *)
(* ------------------------------------------------------------------ *)

(* The resynthesize scenario, measured end to end: synthesize a circuit
   cold, move every spec target ~5% toward the hard side (the shape hash
   — the winner-corpus key — is unchanged by construction), then run the
   re-targeted problem twice at the identical budget: cold, and seeded
   from the parent winner (values, grid indices, learned Hustin
   distribution). The figure of merit is moves-to-target — the move count
   at which a run's trace first reaches the cold run's own final
   (pre-polish) best — so the cold run sets its own bar and the warm run
   is charged against it. --floor F (CI: WARM_FLOOR) fails the bench
   unless some circuit's cold/warm ratio reaches F. A side guard reruns
   the first circuit with [warm_starts = [||]] and insists the winner is
   bit-identical to the plain call — the warm-off cold path must never
   move. *)
let warm_start_bench () =
  sep "WARM-START -- corpus-seeded restarts vs cold (resynthesize fast path)";
  let n_moves = Option.value !moves ~default:6_000 in
  let circuits = [ "simple-ota"; "two-stage"; "folded-cascode" ] in
  Printf.printf "moves=%d per run, 1 restart per side (the resynthesize schedule)\n" n_moves;
  let retarget (p : Core.Problem.t) =
    {
      p with
      Core.Problem.specs =
        List.map
          (fun (s : Core.Problem.spec) ->
            let nudge = 0.05 *. Float.abs s.Core.Problem.good in
            let good =
              if s.Core.Problem.good <= s.Core.Problem.bad then s.Core.Problem.good -. nudge
              else s.Core.Problem.good +. nudge
            in
            { s with Core.Problem.good })
          p.Core.Problem.specs;
    }
  in
  let min_best (r : Core.Oblx.result) =
    List.fold_left
      (fun a (tp : Core.Oblx.trace_point) -> Float.min a tp.Core.Oblx.tp_best)
      Float.infinity r.Core.Oblx.trace
  in
  let moves_to ~target (r : Core.Oblx.result) =
    List.find_opt
      (fun (tp : Core.Oblx.trace_point) -> tp.Core.Oblx.tp_best <= target)
      r.Core.Oblx.trace
    |> Option.map (fun (tp : Core.Oblx.trace_point) -> tp.Core.Oblx.tp_moves)
  in
  let rows =
    List.mapi
      (fun ci name ->
        let e = Option.get (Suite.Ckts.find name) in
        let p = compile_exn e in
        let shape = Option.value (Serve.Corpus.shape_of_source e.source) ~default:"-" in
        (* Parent: the job whose winner the corpus would hold. *)
        let parent, _ =
          Core.Oblx.best_of ~seed:base_seed ~moves:n_moves ?jobs:!jobs ~runs:1 p
        in
        let p' = retarget p in
        let seed' = base_seed + 31 in
        (* Cold side, run with an explicit empty seeds array — doubling as
           the warm-off determinism guard on the first circuit. *)
        let cold, _ =
          Core.Oblx.best_of ~seed:seed' ~moves:n_moves ?jobs:!jobs ~warm_starts:[||] ~runs:1
            p'
        in
        let cold_identical =
          if ci > 0 then true
          else begin
            let plain, _ = Core.Oblx.best_of ~seed:seed' ~moves:n_moves ?jobs:!jobs ~runs:1 p' in
            Int64.equal
              (Int64.bits_of_float plain.Core.Oblx.best_cost)
              (Int64.bits_of_float cold.Core.Oblx.best_cost)
            && plain.Core.Oblx.final.Core.State.values = cold.Core.Oblx.final.Core.State.values
          end
        in
        let seed_entry =
          {
            Core.Oblx.ws_label = "bench:parent:" ^ name;
            ws_values = Array.copy parent.Core.Oblx.final.Core.State.values;
            ws_grid = Array.copy parent.Core.Oblx.final.Core.State.grid_index;
            ws_probs = (if parent.Core.Oblx.probs = [||] then None else Some parent.Core.Oblx.probs);
          }
        in
        let warm, _ =
          Core.Oblx.best_of ~seed:seed' ~moves:n_moves ?jobs:!jobs
            ~warm_starts:[| seed_entry |] ~runs:1 p'
        in
        let target = min_best cold in
        let cold_mtt = Option.value (moves_to ~target cold) ~default:cold.Core.Oblx.moves in
        let warm_mtt = moves_to ~target warm in
        let warm_reached = Option.is_some warm_mtt in
        let warm_mtt = Option.value warm_mtt ~default:warm.Core.Oblx.moves in
        let ratio = float_of_int cold_mtt /. float_of_int (Int.max 1 warm_mtt) in
        Printf.printf
          "\n-- %s (shape %s)\n   parent cost %.4g; re-targeted cold best %.4g\n" name
          (String.sub shape 0 (Int.min 16 (String.length shape)))
          parent.Core.Oblx.best_cost cold.Core.Oblx.best_cost;
        Printf.printf "   moves to cold's best: cold %d, warm %d%s -> %.2fx\n" cold_mtt
          warm_mtt
          (if warm_reached then "" else " (never; full budget charged)")
          ratio;
        Printf.printf "   warm seed used: %s; warm-off cold path bit-identical: %b\n"
          (Option.value warm.Core.Oblx.warm ~default:"NONE (bug)")
          cold_identical;
        if not cold_identical then
          failwith (name ^ ": warm_starts=[||] perturbed the cold path");
        if warm.Core.Oblx.warm = None then
          failwith (name ^ ": warm run did not record its seed");
        (name, shape, target, cold_mtt, warm_mtt, warm_reached, ratio, cold_identical,
         parent.Core.Oblx.best_cost, cold.Core.Oblx.best_cost, warm.Core.Oblx.best_cost))
      circuits
  in
  let best_ratio =
    List.fold_left (fun a (_, _, _, _, _, _, r, _, _, _, _) -> Float.max a r) 0.0 rows
  in
  Printf.printf "\nbest warm-start speedup (moves to cold's best): %.2fx\n" best_ratio;
  let path = "bench/results/warm-start-latest.json" in
  let num v = Obs.Json.Num v in
  let int v = num (float_of_int v) in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.Str "warm-start");
        ("baseline", baseline_json ~jobs:1 ~eval_mode:"incremental");
        ("seed", int base_seed);
        ("moves", int n_moves);
        ("best_ratio", num best_ratio);
        ( "circuits",
          Obs.Json.Arr
            (List.map
               (fun (name, shape, target, cold_mtt, warm_mtt, reached, ratio, ident, pc, cc, wc) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.Str name);
                     ("shape", Obs.Json.Str shape);
                     ("target", num target);
                     ("cold_moves_to_target", int cold_mtt);
                     ("warm_moves_to_target", int warm_mtt);
                     ("warm_reached_target", Obs.Json.Bool reached);
                     ("ratio", num ratio);
                     ("cold_bit_identical", Obs.Json.Bool ident);
                     ("parent_cost", num pc);
                     ("cold_cost", num cc);
                     ("warm_cost", num wc);
                   ])
               rows) );
      ]
  in
  write_artifact path json;
  match !floor_opt with
  | None -> ()
  | Some f ->
      Printf.printf "floor check: best ratio %.2fx (floor %.2fx)\n" best_ratio f;
      if best_ratio < f then begin
        Printf.eprintf "warm-start: FAIL: best ratio %.2fx below floor %.2fx\n" best_ratio f;
        exit 1
      end
      else Printf.printf "floor check: PASS\n"

let usage () =
  print_endline
    "usage: main.exe \
     [table1|table2|table3|fig2|fig3|models|ablation|perf|perf-parallel|perf-incremental|telemetry|serve|serve-concurrent|serve-fleet|sweep|warm-start|all]\n\
    \       [--runs N] [--moves N] [--jobs N] [--floor F] [--runstamp S]"

let () =
  let cmds = ref [] in
  let rec parse = function
    | [] -> ()
    | "--runs" :: v :: rest ->
        runs := int_of_string v;
        parse rest
    | "--moves" :: v :: rest ->
        moves := Some (int_of_string v);
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := Some (int_of_string v);
        parse rest
    | "--floor" :: v :: rest ->
        floor_opt := Some (float_of_string v);
        parse rest
    | "--runstamp" :: v :: rest ->
        runstamp := Some v;
        parse rest
    | cmd :: rest ->
        cmds := cmd :: !cmds;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cmds = if !cmds = [] then [ "all" ] else List.rev !cmds in
  let dispatch = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "table3" -> table3 ()
    | "fig2" -> fig2 ()
    | "fig3" -> fig3 ()
    | "models" -> models ()
    | "ablation" -> ablation ()
    | "perf" -> perf ()
    | "perf-parallel" -> perf_parallel ()
    | "perf-incremental" -> perf_incremental ()
    | "telemetry" -> telemetry ()
    | "serve" -> serve ()
    | "serve-concurrent" -> serve_concurrent ()
    | "serve-fleet" -> serve_fleet ()
    | "sweep" -> sweep_bench ()
    | "warm-start" -> warm_start_bench ()
    | "all" ->
        table1 ();
        table2 ();
        table3 ();
        fig2 ();
        fig3 ();
        models ();
        ablation ();
        perf ();
        perf_parallel ();
        perf_incremental ();
        telemetry ();
        serve ();
        serve_concurrent ();
        serve_fleet ();
        sweep_bench ();
        warm_start_bench ()
    | other ->
        Printf.printf "unknown experiment %S\n" other;
        usage ();
        exit 1
  in
  List.iter dispatch cmds
