(* oblxd — the synthesis daemon: a Unix-socket JSONL service around the
   ASTRX compile cache and an OBLX worker pool (docs/SERVER.md).

     oblxd --socket oblxd.sock --workers 4 --queue 64
     astrx submit simple-ota --seed 7 --wait

   Runs in the foreground until a shutdown request or SIGINT/SIGTERM. *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "oblxd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains running jobs (default: cores - 1)")

let queue_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Queue capacity; submissions beyond it are rejected with a reason")

let cache_arg =
  Arg.(
    value
    & opt int 64
    & info [ "cache" ] ~docv:"N" ~doc:"Compile-cache capacity (problems, LRU-evicted)")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) (Some "oblxd-state")
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Directory receiving one job-<id>.json per finished job; --no-state disables")

let no_state_arg =
  Arg.(value & flag & info [ "no-state" ] ~doc:"Keep no on-disk job records")

let default_moves_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "default-moves" ] ~docv:"N"
        ~doc:
          "Move budget for submissions that do not set one (default: OBLX's per-problem \
           budget, which can be large — production deployments should cap it)")

let max_connections_arg =
  Arg.(
    value
    & opt int Serve.Server.default_max_connections
    & info [ "max-connections" ] ~docv:"N"
        ~doc:
          "Live-connection cap; connections beyond it are answered with an error line and \
           closed")

let idle_timeout_arg =
  Arg.(
    value
    & opt float Serve.Server.default_idle_timeout_s
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Drop a connection this quiet between requests (frees its slot)")

let no_incremental_arg =
  Arg.(
    value
    & flag
    & info [ "no-incremental" ]
        ~doc:
          "Evaluate every move with the full cost function instead of the move-scoped \
           incremental evaluator (escape hatch; results are bit-identical either way)")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No startup banner")

let run socket workers queue cache state_dir no_state default_moves no_incremental
    max_connections idle_timeout quiet =
  let workers = match workers with Some w -> Int.max 0 w | None -> Core.Oblx.default_jobs () in
  let state_dir = if no_state then None else state_dir in
  let cfg =
    {
      Serve.Server.socket_path = socket;
      max_connections = Int.max 1 max_connections;
      idle_timeout_s = idle_timeout;
      pool =
        {
          Serve.Pool.workers;
          queue_capacity = queue;
          cache_capacity = cache;
          state_dir;
          default_moves;
          incremental = not no_incremental;
        };
    }
  in
  let ready () =
    if not quiet then begin
      Printf.printf
        "oblxd: listening on %s (%d worker%s, queue %d, cache %d, max %d connections)\n%!"
        socket workers
        (if workers = 1 then "" else "s")
        queue cache (Int.max 1 max_connections);
      match state_dir with
      | Some d -> Printf.printf "oblxd: job records and jobs.log in %s/\n%!" d
      | None -> ()
    end
  in
  match Serve.Server.run ~ready cfg with
  | () ->
      if not quiet then print_endline "oblxd: drained, bye";
      0
  | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "oblxd: %s(%s): %s\n" fn arg (Unix.error_message e);
      1

let () =
  let doc = "OBLX synthesis daemon (JSONL over a Unix socket)" in
  let info = Cmd.info "oblxd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ socket_arg $ workers_arg $ queue_arg $ cache_arg $ state_dir_arg
            $ no_state_arg $ default_moves_arg $ no_incremental_arg $ max_connections_arg
            $ idle_timeout_arg $ quiet_arg)))
