(* oblxd — the synthesis daemon: a Unix-socket JSONL service around the
   ASTRX compile cache and an OBLX worker pool (docs/SERVER.md).

     oblxd --socket oblxd.sock --workers 4 --queue 64
     astrx submit simple-ota --seed 7 --wait

   With --tcp it also listens on TCP (fleet peers, remote clients); with
   --peer it coordinates a fleet — scattering restart budgets across
   peers and replicating compile verdicts (docs/SERVER.md, "Fleet").

   Runs in the foreground until a shutdown request or SIGINT/SIGTERM. *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "oblxd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "Also listen on TCP (same protocol; fleet peers connect here). Port 0 binds an \
           ephemeral port and prints it at startup")

let auth_token_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth-token-file" ] ~docv:"FILE"
        ~doc:
          "Shared secret (first line of FILE) required as the first line of every \
           connection; also presented when dialing peers")

let peer_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "peer" ] ~docv:"ENDPOINT"
        ~doc:
          "A fleet peer (tcp:HOST:PORT or unix:PATH; repeatable). Multi-restart submits \
           are scattered across peers and compile verdicts replicated to them")

let steal_timeout_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "steal-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-shard deadline when scattering: a peer that has not finished its shard by \
           then is treated as dead and the shard is re-run locally")

let log_rotate_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "log-rotate-bytes" ] ~docv:"BYTES"
        ~doc:
          "Compact state-dir/jobs.log once it exceeds BYTES (one terminal record per \
           finished job); default: never rotate")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains running jobs (default: cores - 1)")

let queue_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Queue capacity; submissions beyond it are rejected with a reason")

let cache_arg =
  Arg.(
    value
    & opt int 64
    & info [ "cache" ] ~docv:"N" ~doc:"Compile-cache capacity (problems, LRU-evicted)")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) (Some "oblxd-state")
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Directory receiving one job-<id>.json per finished job; --no-state disables")

let no_state_arg =
  Arg.(value & flag & info [ "no-state" ] ~doc:"Keep no on-disk job records")

let default_moves_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "default-moves" ] ~docv:"N"
        ~doc:
          "Move budget for submissions that do not set one (default: OBLX's per-problem \
           budget, which can be large — production deployments should cap it)")

let max_connections_arg =
  Arg.(
    value
    & opt int Serve.Server.default_max_connections
    & info [ "max-connections" ] ~docv:"N"
        ~doc:
          "Live-connection cap; connections beyond it are answered with an error line and \
           closed")

let idle_timeout_arg =
  Arg.(
    value
    & opt float Serve.Server.default_idle_timeout_s
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Drop a connection this quiet between requests (frees its slot)")

let warm_start_arg =
  Arg.(
    value
    & flag
    & info [ "warm-start" ]
        ~doc:
          "Seed a fraction of each submission's annealing restarts from the winner corpus \
           (prior winners for the same circuit shape). Off by default: cold-path results \
           are bit-identical to a corpus-free daemon. Recording winners is always on")

let warm_fraction_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "warm-fraction" ] ~docv:"F"
        ~doc:
          "With --warm-start: at most this fraction of a job's restarts get warm seeds \
           (floored; the rest stay cold so the search keeps exploring)")

let corpus_capacity_arg =
  Arg.(
    value
    & opt int 256
    & info [ "corpus-capacity" ] ~docv:"N"
        ~doc:
          "Winner-corpus bound (entries, worst-cost-evicted); journaled in \
           state-dir/corpus.log and replicated to fleet peers")

let no_incremental_arg =
  Arg.(
    value
    & flag
    & info [ "no-incremental" ]
        ~doc:
          "Evaluate every move with the full cost function instead of the move-scoped \
           incremental evaluator (escape hatch; results are bit-identical either way)")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No startup banner")

let parse_tcp s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "--tcp %s: expected HOST:PORT" s)
  | Some i -> begin
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
      | _ -> Error (Printf.sprintf "--tcp %s: bad port %S" s port)
    end

let read_token file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> match input_line ic with line -> String.trim line | exception End_of_file -> "")

let run socket tcp auth_token_file peers steal_timeout log_rotate_bytes workers queue cache
    state_dir no_state default_moves warm_start warm_fraction corpus_capacity no_incremental
    max_connections idle_timeout quiet =
  let workers = match workers with Some w -> Int.max 0 w | None -> Core.Oblx.default_jobs () in
  let state_dir = if no_state then None else state_dir in
  match (match tcp with None -> Ok None | Some s -> Result.map Option.some (parse_tcp s)) with
  | Error e ->
      prerr_endline ("oblxd: " ^ e);
      2
  | Ok tcp -> begin
      match
        match auth_token_file with
        | None -> Ok None
        | Some f -> begin
            match read_token f with
            | "" -> Error (Printf.sprintf "oblxd: --auth-token-file %s: empty token" f)
            | tok -> Ok (Some tok)
            | exception Sys_error e -> Error ("oblxd: " ^ e)
          end
      with
      | Error e ->
          prerr_endline e;
          2
      | Ok auth_token ->
          (* Always fleet-aware: even a leaf daemon with no peers serves
             cache_lookup/cache_push, so any box can join a fleet later. *)
          let fleet =
            Serve.Fleet.create
              {
                Serve.Fleet.default_config with
                peers;
                auth = auth_token;
                steal_timeout_s = steal_timeout;
              }
          in
          let cfg =
            {
              Serve.Server.socket_path = socket;
              tcp;
              auth_token;
              max_connections = Int.max 1 max_connections;
              idle_timeout_s = idle_timeout;
              pool =
                {
                  Serve.Pool.workers;
                  queue_capacity = queue;
                  cache_capacity = cache;
                  state_dir;
                  default_moves;
                  incremental = not no_incremental;
                  fleet = Some fleet;
                  log_rotate_bytes;
                  warm = warm_start;
                  warm_fraction = Float.max 0.0 (Float.min 1.0 warm_fraction);
                  corpus_capacity = Int.max 1 corpus_capacity;
                };
            }
          in
          let bound_tcp = ref None in
          let tcp_port p = bound_tcp := Some p in
          let ready () =
            if not quiet then begin
              Printf.printf
                "oblxd: listening on %s (%d worker%s, queue %d, cache %d, max %d \
                 connections)\n\
                 %!"
                socket workers
                (if workers = 1 then "" else "s")
                queue cache (Int.max 1 max_connections);
              (match (tcp, !bound_tcp) with
              | Some (host, _), Some port ->
                  Printf.printf "oblxd: tcp on %s:%d%s\n%!"
                    (if host = "" then "*" else host)
                    port
                    (if auth_token = None then " (no auth token!)" else "")
              | _ -> ());
              (match peers with
              | [] -> ()
              | ps -> Printf.printf "oblxd: fleet peers: %s\n%!" (String.concat ", " ps));
              (match state_dir with
              | Some d -> Printf.printf "oblxd: job records and jobs.log in %s/\n%!" d
              | None -> ());
              if warm_start then
                Printf.printf "oblxd: warm-start on (fraction %.2f, corpus capacity %d)\n%!"
                  (Float.max 0.0 (Float.min 1.0 warm_fraction))
                  (Int.max 1 corpus_capacity)
            end
          in
          (match Serve.Server.run ~ready ~tcp_port cfg with
          | () ->
              if not quiet then print_endline "oblxd: drained, bye";
              0
          | exception Unix.Unix_error (e, fn, arg) ->
              Printf.eprintf "oblxd: %s(%s): %s\n" fn arg (Unix.error_message e);
              1)
    end

let () =
  let doc = "OBLX synthesis daemon (JSONL over a Unix socket, optionally TCP)" in
  let info = Cmd.info "oblxd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ socket_arg $ tcp_arg $ auth_token_file_arg $ peer_arg
            $ steal_timeout_arg $ log_rotate_bytes_arg $ workers_arg $ queue_arg $ cache_arg
            $ state_dir_arg $ no_state_arg $ default_moves_arg $ warm_start_arg
            $ warm_fraction_arg $ corpus_capacity_arg $ no_incremental_arg
            $ max_connections_arg $ idle_timeout_arg $ quiet_arg)))
