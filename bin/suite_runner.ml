(* Run the full benchmark suite and print a summary — a lighter-weight
   sibling of bench/main.exe for interactive use:

   suite_runner [seed [moves [runs [jobs [trace-file [trace-level]]]]]]

   With runs > 1 each circuit is synthesized by the domain-parallel
   multi-start engine (Oblx.best_of) and the winning run is reported.
   With a trace file, every circuit's annealing telemetry is appended to
   the same JSONL stream (docs/OBSERVABILITY.md); trace-level is one of
   summary|stage|moves (default stage). *)

let () =
  let arg k = if Array.length Sys.argv > k then Some (int_of_string Sys.argv.(k)) else None in
  let seed = Option.value (arg 1) ~default:1 in
  let moves = arg 2 in
  let runs = Option.value (arg 3) ~default:1 in
  let jobs = arg 4 in
  let obs =
    if Array.length Sys.argv > 5 then begin
      let level =
        if Array.length Sys.argv > 6 then
          match Obs.Event.level_of_string Sys.argv.(6) with
          | Ok l -> l
          | Error e ->
              prerr_endline e;
              exit 2
        else Obs.Event.Stage
      in
      Obs.Trace.make ~level [ Obs.Sink.jsonl_file Sys.argv.(5) ]
    end
    else Obs.Trace.none
  in
  Printf.printf "%-22s %8s %8s %10s %8s %s\n" "circuit" "cost" "evals" "ms/eval" "time" "unmet";
  List.iter
    (fun (e : Suite.Ckts.entry) ->
      if e.synthesized then begin
        match Core.Compile.compile_source e.source with
        | Error msg -> Printf.printf "%-22s COMPILE FAIL: %s\n%!" e.name msg
        | Ok p ->
            let r, all = Core.Oblx.best_of ~seed ?moves ?jobs ~obs ~runs p in
            let unmet =
              List.filter_map
                (fun (s : Core.Problem.spec) ->
                  match List.assoc s.Core.Problem.spec_name r.Core.Oblx.predicted with
                  | None -> Some s.spec_name
                  | Some v -> begin
                      match s.kind with
                      | Netlist.Ast.Constraint_ge when v < s.good *. 0.98 -> Some s.spec_name
                      | Netlist.Ast.Constraint_le when v > s.good *. 1.02 -> Some s.spec_name
                      | Netlist.Ast.Constraint_ge | Netlist.Ast.Constraint_le
                      | Netlist.Ast.Objective_max | Netlist.Ast.Objective_min ->
                          None
                    end)
                p.Core.Problem.specs
            in
            let wall = List.fold_left (fun a (x : Core.Oblx.result) -> a +. x.run_time_s) 0.0 all in
            Printf.printf "%-22s %8.3g %8d %10.2f %7.1fs %s\n%!" e.name r.best_cost r.evals
              r.eval_time_ms wall (String.concat "," unmet)
      end)
    Suite.Ckts.all;
  Obs.Trace.close obs
