(* The astrx command-line tool: compile a synthesis problem, run OBLX on
   it, verify the result against the reference simulator.

   astrx compile FILE          analysis only (the Table-1 row)
   astrx synth FILE            synthesize and report
   astrx bench NAME            run a built-in benchmark circuit
   astrx replay NAME TRACE     re-check a recorded trace against the cost fn
*)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let print_analysis name (p : Core.Problem.t) =
  let a = p.Core.Problem.analysis in
  Printf.printf "%s: ASTRX analysis\n" name;
  Printf.printf "  input lines          : %d netlist + %d synthesis-specific\n"
    a.Core.Problem.input_netlist_lines a.input_synth_lines;
  Printf.printf "  user variables       : %d\n" a.n_user_vars;
  Printf.printf "  node-voltage vars    : %d (relaxed-dc)\n" a.n_node_vars;
  Printf.printf "  cost-function terms  : %d\n" a.n_cost_terms;
  Printf.printf "  generated code size  : %d (C-lines metric)\n" a.lines_of_c;
  Printf.printf "  bias circuit         : %d nodes, %d elements\n" a.bias_nodes a.bias_elements;
  List.iter
    (fun (j, n_, e) -> Printf.printf "  AWE circuit %-8s : %d nodes, %d elements\n" j n_ e)
    a.awe_circuits

let print_result (p : Core.Problem.t) (r : Core.Oblx.result) ~verify =
  Printf.printf "synthesis: cost=%.4g moves=%d evals=%d (%.2f ms/eval) in %.1f s%s\n"
    r.Core.Oblx.best_cost r.moves r.evals r.eval_time_ms r.run_time_s
    (if r.froze_early then ", froze" else "");
  Printf.printf "sized design:\n";
  Core.Report.print_sizes Format.std_formatter p r.final;
  Format.pp_print_flush Format.std_formatter ();
  let sims =
    if verify then
      match Core.Verify.simulate_specs p r.final with
      | Ok sims -> Some sims
      | Error e ->
          Printf.printf "verification failed: %s\n" e;
          None
    else None
  in
  Printf.printf "%-10s %-12s %10s / %-10s\n" "spec" "goal" "oblx" "sim";
  List.iter
    (fun (s : Core.Problem.spec) ->
      let predicted = List.assoc s.Core.Problem.spec_name r.predicted in
      let simulated = Option.map (List.assoc s.Core.Problem.spec_name) sims in
      print_endline (Core.Report.spec_row s ~predicted ~simulated))
    p.Core.Problem.specs

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Problem description file")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed")
let moves_arg = Arg.(value & opt (some int) None & info [ "moves" ] ~doc:"Annealing move budget")
let runs_arg = Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Independent annealing runs")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ]
        ~doc:
          "Worker domains running the independent restarts in parallel (default: cores - 1). \
           The winner is bit-identical for any job count; see docs/PARALLEL.md.")

let early_stop_arg =
  Arg.(
    value
    & flag
    & info [ "early-stop" ]
        ~doc:
          "Let laggard restarts give up once another run has published a much better cost \
           (faster, but the winner may differ from the deterministic default)")

let no_verify_arg =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip reference-simulator verification")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write annealing telemetry (one JSON event per line) to $(docv); see \
           docs/OBSERVABILITY.md. With --runs > 1 every restart shares the file, tagged by \
           restart index.")

let trace_level_conv =
  let parse s =
    match Obs.Event.level_of_string s with Ok l -> Ok l | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Obs.Event.level_to_string l))

let trace_level_arg =
  Arg.(
    value
    & opt trace_level_conv Obs.Event.Moves
    & info [ "trace-level" ] ~docv:"LEVEL"
        ~doc:
          "Trace verbosity: $(b,summary) (restart/done), $(b,stage) (+ per-stage cost, Hustin \
           probabilities, weight updates), or $(b,moves) (+ every decided move with accepted \
           design points — required for $(b,astrx replay)). Default $(b,moves).")

(* The trace handle for one CLI invocation, or [Trace.none] without --trace. *)
let make_trace path level =
  match path with
  | None -> Obs.Trace.none
  | Some path -> Obs.Trace.make ~level [ Obs.Sink.jsonl_file path ]

let netlist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-netlist" ] ~docv:"FILE" ~doc:"Write the sized design as a SPICE deck")

let compile_cmd =
  let run file =
    match Core.Compile.compile_source (read_file file) with
    | Error e ->
        prerr_endline e;
        1
    | Ok p ->
        print_analysis file p;
        0
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a problem and print ASTRX's analysis")
    Term.(const run $ file_arg)

let synth_source name src seed moves runs jobs early_stop no_verify dump trace_path trace_level
    =
  match Core.Compile.compile_source src with
  | Error e ->
      prerr_endline e;
      1
  | Ok _ when runs < 1 ->
      prerr_endline "astrx: --runs must be >= 1";
      1
  | Ok p ->
      print_analysis name p;
      let obs = make_trace trace_path trace_level in
      let best, all = Core.Oblx.best_of ~seed ?moves ?jobs ~early_stop ~obs ~runs p in
      Obs.Trace.close obs;
      (match trace_path with
      | Some path ->
          Printf.printf "trace written to %s (level %s)\n" path
            (Obs.Event.level_to_string trace_level)
      | None -> ());
      if runs > 1 then begin
        let cuts = List.filter (fun r -> r.Core.Oblx.cut_short) all in
        Printf.printf "multi-start: %d runs on %d domain(s)%s\n" runs
          (Int.min runs (Int.max 1 (Option.value jobs ~default:(Core.Oblx.default_jobs ()))))
          (if cuts <> [] then Printf.sprintf ", %d cut short" (List.length cuts) else "");
        List.iter
          (fun (r : Core.Oblx.result) ->
            match r.Core.Oblx.cut_reason with
            | Some reason -> Printf.printf "  cut: %s\n" reason
            | None -> ())
          cuts
      end;
      print_result p best ~verify:(not no_verify);
      (match dump with
      | Some path ->
          let oc = open_out path in
          output_string oc (Core.Report.sized_netlist p best.Core.Oblx.final);
          close_out oc;
          Printf.printf "sized netlist written to %s\n" path
      | None -> ());
      0

let synth_cmd =
  let run file seed moves runs jobs early_stop no_verify dump trace trace_level =
    synth_source file (read_file file) seed moves runs jobs early_stop no_verify dump trace
      trace_level
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize a problem with OBLX")
    Term.(
      const run $ file_arg $ seed_arg $ moves_arg $ runs_arg $ jobs_arg $ early_stop_arg
      $ no_verify_arg $ netlist_arg $ trace_arg $ trace_level_arg)

let bench_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name")
  in
  let run name seed moves runs jobs early_stop no_verify dump trace trace_level =
    match Suite.Ckts.find name with
    | None ->
        Printf.eprintf "unknown benchmark %s; known: %s\n" name
          (String.concat ", " (List.map (fun (e : Suite.Ckts.entry) -> e.name) Suite.Ckts.all));
        1
    | Some e ->
        synth_source e.name e.source seed moves runs jobs early_stop no_verify dump trace
          trace_level
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run a built-in benchmark circuit")
    Term.(
      const run $ name_arg $ seed_arg $ moves_arg $ runs_arg $ jobs_arg $ early_stop_arg
      $ no_verify_arg $ netlist_arg $ trace_arg $ trace_level_arg)

(* Problem source for replay: a built-in benchmark name or a file path. *)
let problem_source name =
  match Suite.Ckts.find name with
  | Some e -> Ok e.Suite.Ckts.source
  | None -> if Sys.file_exists name then Ok (read_file name) else Error (Printf.sprintf "replay: %S is neither a built-in benchmark nor a file" name)

let replay_cmd =
  let problem_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROBLEM" ~doc:"Built-in benchmark name or problem file")
  in
  let trace_file_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE" ~doc:"JSONL trace file")
  in
  let tol_arg =
    Arg.(
      value
      & opt float 1e-6
      & info [ "tol" ] ~doc:"Relative cost tolerance for a replayed state to count as matching")
  in
  let run name trace_file tol =
    match problem_source name with
    | Error e ->
        prerr_endline e;
        1
    | Ok src -> begin
        match Core.Compile.compile_source src with
        | Error e ->
            prerr_endline e;
            1
        | Ok p -> begin
            match Obs.Replay.read_file trace_file with
            | Error e ->
                Printf.eprintf "replay: cannot read %s: %s\n" trace_file e;
                1
            | Ok events -> begin
                match Core.Oblx.replay ~tol p events with
                | Ok stats ->
                    Printf.printf
                      "replay OK: %d events, %d restart(s), %d accepted states re-evaluated, \
                       max rel err %.3g\n"
                      stats.Obs.Replay.rs_events stats.rs_restarts stats.rs_checked
                      stats.rs_max_rel_err;
                    if stats.rs_checked = 0 then begin
                      Printf.eprintf
                        "replay: trace has no replayable states — record with --trace-level \
                         moves\n";
                      1
                    end
                    else 0
                | Error (mismatches, stats) ->
                    Printf.eprintf "replay FAILED: %d of %d re-evaluations mismatch\n"
                      (List.length mismatches) stats.Obs.Replay.rs_checked;
                    List.iteri
                      (fun i m ->
                        if i < 10 then
                          Format.eprintf "  %a@." Obs.Replay.pp_mismatch m)
                      mismatches;
                    1
              end
          end
      end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-evaluate every accepted state of a recorded trace against the compiled cost \
          function (deterministic-replay regression check)")
    Term.(const run $ problem_arg $ trace_file_arg $ tol_arg)

let corners_cmd =
  let run file seed moves =
    let src = read_file file in
    match Core.Compile.compile_source src with
    | Error e ->
        prerr_endline e;
        1
    | Ok p ->
        let r = Core.Oblx.synthesize ~seed ?moves p in
        Printf.printf "nominal synthesis: cost %.4g\n" r.Core.Oblx.best_cost;
        let sizing = Core.Report.sizes p r.final in
        (match Core.Corners.analyze ~source:src ~sizing () with
        | Error e ->
            prerr_endline e;
            1
        | Ok results ->
            Printf.printf "%-10s" "spec";
            List.iter (fun sc -> Printf.printf " %12s" sc.Core.Corners.sc_corner) results;
            Printf.printf " %12s\n" "worst-case";
            let worst = Core.Corners.worst_case p results in
            List.iter
              (fun (s : Core.Problem.spec) ->
                let name = s.Core.Problem.spec_name in
                Printf.printf "%-10s" name;
                List.iter
                  (fun sc ->
                    match List.assoc name sc.Core.Corners.sc_values with
                    | Ok v -> Printf.printf " %12s" (Core.Report.eng v)
                    | Error _ -> Printf.printf " %12s" "fail")
                  results;
                (match List.assoc name worst with
                | Ok v -> Printf.printf " %12s\n" (Core.Report.eng v)
                | Error _ -> Printf.printf " %12s\n" "fail"))
              p.Core.Problem.specs;
            0)
  in
  Cmd.v
    (Cmd.info "corners" ~doc:"Synthesize, then re-verify the design at process corners")
    Term.(const run $ file_arg $ seed_arg $ moves_arg)

let sens_cmd =
  let run file seed moves =
    match Core.Compile.compile_source (read_file file) with
    | Error e ->
        prerr_endline e;
        1
    | Ok p ->
        let r = Core.Oblx.synthesize ~seed ?moves p in
        Printf.printf "synthesis: cost %.4g\n" r.Core.Oblx.best_cost;
        let s = Core.Sensitivity.compute p r.Core.Oblx.final in
        Core.Sensitivity.pp Format.std_formatter s;
        Format.pp_print_flush Format.std_formatter ();
        0
  in
  Cmd.v
    (Cmd.info "sens" ~doc:"Synthesize, then print normalized spec/variable sensitivities")
    Term.(const run $ file_arg $ seed_arg $ moves_arg)

let list_cmd =
  let run () =
    List.iter (fun (e : Suite.Ckts.entry) -> print_endline e.name) Suite.Ckts.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in benchmarks") Term.(const run $ const ())

let () =
  let doc = "ASTRX/OBLX analog circuit synthesis" in
  let info = Cmd.info "astrx" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ compile_cmd; synth_cmd; bench_cmd; replay_cmd; corners_cmd; sens_cmd; list_cmd ]))
