(* The astrx command-line tool: compile a synthesis problem, run OBLX on
   it, verify the result against the reference simulator.

   astrx compile FILE          analysis only (the Table-1 row)
   astrx synth FILE            synthesize and report
   astrx bench NAME            run a built-in benchmark circuit
   astrx replay NAME TRACE     re-check a recorded trace against the cost fn
   astrx submit PROBLEM        queue a job on a running oblxd daemon
   astrx status|result|cancel ID / stats / shutdown
                               talk to the daemon (docs/SERVER.md)
*)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let print_analysis name (p : Core.Problem.t) =
  let a = p.Core.Problem.analysis in
  Printf.printf "%s: ASTRX analysis\n" name;
  Printf.printf "  input lines          : %d netlist + %d synthesis-specific\n"
    a.Core.Problem.input_netlist_lines a.input_synth_lines;
  Printf.printf "  user variables       : %d\n" a.n_user_vars;
  Printf.printf "  node-voltage vars    : %d (relaxed-dc)\n" a.n_node_vars;
  Printf.printf "  cost-function terms  : %d\n" a.n_cost_terms;
  Printf.printf "  generated code size  : %d (C-lines metric)\n" a.lines_of_c;
  Printf.printf "  bias circuit         : %d nodes, %d elements\n" a.bias_nodes a.bias_elements;
  List.iter
    (fun (j, n_, e) -> Printf.printf "  AWE circuit %-8s : %d nodes, %d elements\n" j n_ e)
    a.awe_circuits

let print_result (p : Core.Problem.t) (r : Core.Oblx.result) ~verify =
  Printf.printf "synthesis: cost=%.4g moves=%d evals=%d (%.2f ms/eval) in %.1f s%s\n"
    r.Core.Oblx.best_cost r.moves r.evals r.eval_time_ms r.run_time_s
    (if r.froze_early then ", froze" else "");
  Printf.printf "sized design:\n";
  Core.Report.print_sizes Format.std_formatter p r.final;
  Format.pp_print_flush Format.std_formatter ();
  let sims =
    if verify then
      match Core.Verify.simulate_specs p r.final with
      | Ok sims -> Some sims
      | Error e ->
          Printf.printf "verification failed: %s\n" e;
          None
    else None
  in
  Printf.printf "%-10s %-12s %10s / %-10s\n" "spec" "goal" "oblx" "sim";
  List.iter
    (fun (s : Core.Problem.spec) ->
      let predicted = List.assoc s.Core.Problem.spec_name r.predicted in
      let simulated = Option.map (List.assoc s.Core.Problem.spec_name) sims in
      print_endline (Core.Report.spec_row s ~predicted ~simulated))
    p.Core.Problem.specs

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Problem description file")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed")
let moves_arg = Arg.(value & opt (some int) None & info [ "moves" ] ~doc:"Annealing move budget")
let runs_arg = Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Independent annealing runs")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ]
        ~doc:
          "Worker domains running the independent restarts in parallel (default: cores - 1). \
           The winner is bit-identical for any job count; see docs/PARALLEL.md.")

let early_stop_arg =
  Arg.(
    value
    & flag
    & info [ "early-stop" ]
        ~doc:
          "Let laggard restarts give up once another run has published a much better cost \
           (faster, but the winner may differ from the deterministic default)")

let no_verify_arg =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip reference-simulator verification")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write annealing telemetry (one JSON event per line) to $(docv); see \
           docs/OBSERVABILITY.md. With --runs > 1 every restart shares the file, tagged by \
           restart index.")

let trace_level_conv =
  let parse s =
    match Obs.Event.level_of_string s with Ok l -> Ok l | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Obs.Event.level_to_string l))

let trace_level_arg =
  Arg.(
    value
    & opt trace_level_conv Obs.Event.Moves
    & info [ "trace-level" ] ~docv:"LEVEL"
        ~doc:
          "Trace verbosity: $(b,summary) (restart/done), $(b,stage) (+ per-stage cost, Hustin \
           probabilities, weight updates), or $(b,moves) (+ every decided move with accepted \
           design points — required for $(b,astrx replay)). Default $(b,moves).")

(* The trace handle for one CLI invocation, or [Trace.none] without --trace. *)
let make_trace path level =
  match path with
  | None -> Obs.Trace.none
  | Some path -> Obs.Trace.make ~level [ Obs.Sink.jsonl_file path ]

let no_incremental_arg =
  Arg.(
    value
    & flag
    & info [ "no-incremental" ]
        ~doc:
          "Evaluate every move with the full cost function instead of the move-scoped \
           incremental evaluator (escape hatch; also disables batched candidate screening, \
           see $(b,--probe-batch))")

let probe_batch_arg =
  Arg.(
    value
    & opt int Core.Oblx.default_probe_batch
    & info [ "probe-batch" ] ~docv:"K"
        ~doc:
          "Candidates screened per annealing decision with the low-rank probe evaluator \
           before the winner is confirmed exactly (accepted costs stay bit-identical to the \
           full evaluator). $(b,1) disables screening and reproduces the classic \
           one-candidate trajectory")

let netlist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-netlist" ] ~docv:"FILE" ~doc:"Write the sized design as a SPICE deck")

let compile_cmd =
  let run file =
    match Core.Compile.compile_source (read_file file) with
    | Error e ->
        prerr_endline e;
        1
    | Ok p ->
        print_analysis file p;
        0
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a problem and print ASTRX's analysis")
    Term.(const run $ file_arg)

let synth_source name src seed moves runs jobs early_stop no_incremental probe_batch no_verify
    dump trace_path trace_level =
  match Core.Compile.compile_source src with
  | Error e ->
      prerr_endline e;
      1
  | Ok _ when runs < 1 ->
      prerr_endline "astrx: --runs must be >= 1";
      1
  | Ok p ->
      print_analysis name p;
      let obs = make_trace trace_path trace_level in
      let best, all =
        Core.Oblx.best_of ~seed ?moves ?jobs ~early_stop ~incremental:(not no_incremental)
          ~probe_batch ~obs ~runs p
      in
      Obs.Trace.close obs;
      (match trace_path with
      | Some path ->
          Printf.printf "trace written to %s (level %s)\n" path
            (Obs.Event.level_to_string trace_level)
      | None -> ());
      if runs > 1 then begin
        let cuts = List.filter (fun r -> r.Core.Oblx.cut_short) all in
        Printf.printf "multi-start: %d runs on %d domain(s)%s\n" runs
          (Int.min runs (Int.max 1 (Option.value jobs ~default:(Core.Oblx.default_jobs ()))))
          (if cuts <> [] then Printf.sprintf ", %d cut short" (List.length cuts) else "");
        List.iter
          (fun (r : Core.Oblx.result) ->
            match r.Core.Oblx.cut_reason with
            | Some reason -> Printf.printf "  cut: %s\n" reason
            | None -> ())
          cuts
      end;
      print_result p best ~verify:(not no_verify);
      (match best.Core.Oblx.eval_stats with
      | Some es when es.Core.Eval.Incr.incr_evals > 0 ->
          let pct a b = if a + b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int (a + b) in
          Printf.printf
            "eval: %d incremental + %d full; op cache %.1f%% hit, ROM reuse %.1f%%, spec reuse \
             %.1f%%; %d resyncs, %d mismatches\n"
            es.Core.Eval.Incr.incr_evals es.Core.Eval.Incr.full_evals
            (pct es.Core.Eval.Incr.op_hits es.Core.Eval.Incr.op_misses)
            (pct es.Core.Eval.Incr.rom_reuses es.Core.Eval.Incr.rom_builds)
            (pct es.Core.Eval.Incr.spec_reuses es.Core.Eval.Incr.spec_evals)
            es.Core.Eval.Incr.resyncs es.Core.Eval.Incr.resync_mismatches;
          if es.Core.Eval.Incr.probes > 0 then
            Printf.printf
              "probe: %d screens, %d jig refits (%d fresh fallbacks); moments %d reused, %d \
               refreshed\n"
              es.Core.Eval.Incr.probes es.Core.Eval.Incr.probe_rom_builds
              es.Core.Eval.Incr.probe_fallbacks es.Core.Eval.Incr.mom_reuses
              es.Core.Eval.Incr.mom_refreshes
      | Some _ | None -> ());
      (match dump with
      | Some path ->
          let oc = open_out path in
          output_string oc (Core.Report.sized_netlist p best.Core.Oblx.final);
          close_out oc;
          Printf.printf "sized netlist written to %s\n" path
      | None -> ());
      0

let synth_cmd =
  let run file seed moves runs jobs early_stop no_incremental probe_batch no_verify dump trace
      trace_level =
    synth_source file (read_file file) seed moves runs jobs early_stop no_incremental
      probe_batch no_verify dump trace trace_level
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize a problem with OBLX")
    Term.(
      const run $ file_arg $ seed_arg $ moves_arg $ runs_arg $ jobs_arg $ early_stop_arg
      $ no_incremental_arg $ probe_batch_arg $ no_verify_arg $ netlist_arg $ trace_arg
      $ trace_level_arg)

let bench_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name")
  in
  let run name seed moves runs jobs early_stop no_incremental probe_batch no_verify dump trace
      trace_level =
    match Suite.Ckts.find name with
    | None ->
        Printf.eprintf "unknown benchmark %s; known: %s\n" name
          (String.concat ", " (List.map (fun (e : Suite.Ckts.entry) -> e.name) Suite.Ckts.all));
        1
    | Some e ->
        synth_source e.name e.source seed moves runs jobs early_stop no_incremental probe_batch
          no_verify dump trace trace_level
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run a built-in benchmark circuit")
    Term.(
      const run $ name_arg $ seed_arg $ moves_arg $ runs_arg $ jobs_arg $ early_stop_arg
      $ no_incremental_arg $ probe_batch_arg $ no_verify_arg $ netlist_arg $ trace_arg
      $ trace_level_arg)

(* Problem source for replay/submit: a built-in benchmark name or a file
   path. An unreadable file is an [Error], not an escaping [Sys_error]. *)
let problem_source name =
  match Suite.Ckts.find name with
  | Some e -> Ok e.Suite.Ckts.source
  | None ->
      if Sys.file_exists name then (
        match read_file name with
        | src -> Ok src
        | exception Sys_error e -> Error (Printf.sprintf "astrx: cannot read %s: %s" name e))
      else Error (Printf.sprintf "astrx: %S is neither a built-in benchmark nor a file" name)

let replay_cmd =
  let problem_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROBLEM" ~doc:"Built-in benchmark name or problem file")
  in
  (* Deliberately a plain string, not [Arg.file]: a missing trace must land
     in the [Obs.Replay.read_file] error path below (clear message, exit 1),
     not cmdliner's usage error. *)
  let trace_file_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TRACE" ~doc:"JSONL trace file")
  in
  let tol_arg =
    Arg.(
      value
      & opt float 1e-6
      & info [ "tol" ] ~doc:"Relative cost tolerance for a replayed state to count as matching")
  in
  let run name trace_file tol =
    match problem_source name with
    | Error e ->
        prerr_endline e;
        1
    | Ok src -> begin
        match Core.Compile.compile_source src with
        | Error e ->
            prerr_endline e;
            1
        | Ok p -> begin
            match Obs.Replay.read_file trace_file with
            | Error e ->
                Printf.eprintf "replay: cannot read %s: %s\n" trace_file e;
                1
            | Ok events -> begin
                match Core.Oblx.replay ~tol p events with
                | Ok stats ->
                    Printf.printf
                      "replay OK: %d events, %d restart(s), %d accepted states re-evaluated, \
                       max rel err %.3g\n"
                      stats.Obs.Replay.rs_events stats.rs_restarts stats.rs_checked
                      stats.rs_max_rel_err;
                    if stats.rs_checked = 0 then begin
                      Printf.eprintf
                        "replay: trace has no replayable states — record with --trace-level \
                         moves\n";
                      1
                    end
                    else 0
                | Error (mismatches, stats) ->
                    Printf.eprintf "replay FAILED: %d of %d re-evaluations mismatch\n"
                      (List.length mismatches) stats.Obs.Replay.rs_checked;
                    List.iteri
                      (fun i m ->
                        if i < 10 then
                          Format.eprintf "  %a@." Obs.Replay.pp_mismatch m)
                      mismatches;
                    1
              end
          end
      end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-evaluate every accepted state of a recorded trace against the compiled cost \
          function (deterministic-replay regression check)")
    Term.(const run $ problem_arg $ trace_file_arg $ tol_arg)

let corners_cmd =
  let run file seed moves =
    let src = read_file file in
    match Core.Compile.compile_source src with
    | Error e ->
        prerr_endline e;
        1
    | Ok p ->
        let r = Core.Oblx.synthesize ~seed ?moves p in
        Printf.printf "nominal synthesis: cost %.4g\n" r.Core.Oblx.best_cost;
        let sizing = Core.Report.sizes p r.final in
        (match Core.Corners.analyze ~source:src ~sizing () with
        | Error e ->
            prerr_endline e;
            1
        | Ok results ->
            Printf.printf "%-10s" "spec";
            List.iter (fun sc -> Printf.printf " %12s" sc.Core.Corners.sc_corner) results;
            Printf.printf " %12s\n" "worst-case";
            let worst = Core.Corners.worst_case p results in
            List.iter
              (fun (s : Core.Problem.spec) ->
                let name = s.Core.Problem.spec_name in
                Printf.printf "%-10s" name;
                List.iter
                  (fun sc ->
                    match List.assoc name sc.Core.Corners.sc_values with
                    | Ok v -> Printf.printf " %12s" (Core.Report.eng v)
                    | Error _ -> Printf.printf " %12s" "fail")
                  results;
                (match List.assoc name worst with
                | Ok v -> Printf.printf " %12s\n" (Core.Report.eng v)
                | Error _ -> Printf.printf " %12s\n" "fail"))
              p.Core.Problem.specs;
            0)
  in
  Cmd.v
    (Cmd.info "corners" ~doc:"Synthesize, then re-verify the design at process corners")
    Term.(const run $ file_arg $ seed_arg $ moves_arg)

let sens_cmd =
  let run file seed moves =
    match Core.Compile.compile_source (read_file file) with
    | Error e ->
        prerr_endline e;
        1
    | Ok p ->
        let r = Core.Oblx.synthesize ~seed ?moves p in
        Printf.printf "synthesis: cost %.4g\n" r.Core.Oblx.best_cost;
        let s = Core.Sensitivity.compute p r.Core.Oblx.final in
        Core.Sensitivity.pp Format.std_formatter s;
        Format.pp_print_flush Format.std_formatter ();
        0
  in
  Cmd.v
    (Cmd.info "sens" ~doc:"Synthesize, then print normalized spec/variable sensitivities")
    Term.(const run $ file_arg $ seed_arg $ moves_arg)

let list_cmd =
  let run () =
    List.iter (fun (e : Suite.Ckts.entry) -> print_endline e.name) Suite.Ckts.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in benchmarks") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* Daemon client (oblxd; docs/SERVER.md)                               *)
(* ------------------------------------------------------------------ *)

module Json = Obs.Json

let socket_arg =
  Arg.(
    value
    & opt string "oblxd.sock"
    & info [ "socket" ] ~docv:"ENDPOINT"
        ~doc:
          "oblxd endpoint: a Unix-socket path (or unix:PATH), or tcp:HOST:PORT / \
           HOST:PORT for a TCP daemon")

let auth_token_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth-token-file" ] ~docv:"FILE"
        ~doc:"Present the shared secret (first line of FILE) when connecting")

(* Read the token eagerly so a bad path fails before we dial. *)
let auth_of_file = function
  | None -> Ok None
  | Some file -> begin
      match open_in file with
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match input_line ic with
              | line -> Ok (Some (String.trim line))
              | exception End_of_file -> Error (file ^ ": empty token file"))
      | exception Sys_error e -> Error e
    end

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Print the raw JSON response on one line")

let id_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Job id")

let client_fail e =
  prerr_endline ("astrx: " ^ e);
  1

let jstr job k = match Json.mem_opt k job with Some (Json.Str s) -> Some s | _ -> None
let jnum job k = match Json.mem_opt k job with Some (Json.Num v) -> Some v | _ -> None

(* One job record, as a short human-readable block. *)
let print_job job =
  let field k render = match render k with Some s -> s | None -> "-" in
  let str k = field k (jstr job) in
  let num fmt k = field k (fun k -> Option.map (Printf.sprintf fmt) (jnum job k)) in
  Printf.printf "job %s (%s): %s\n" (num "%.0f" "id") (str "name") (str "state");
  Printf.printf "  seed %s, runs %s, priority %s, cache %s\n" (num "%.0f" "seed")
    (num "%.0f" "runs") (num "%.0f" "priority") (str "cache");
  Printf.printf "  wait %s s, run %s s\n" (num "%.3f" "wait_s") (num "%.3f" "run_s");
  (match jstr job "cut_reason" with
  | Some r -> Printf.printf "  cut short: %s\n" r
  | None -> ());
  (match jstr job "error" with Some e -> Printf.printf "  error: %s\n" e | None -> ());
  match jnum job "best_cost" with
  | Some c ->
      Printf.printf "  best cost %.4g in %s moves (%s evals)\n" c (num "%.0f" "moves")
        (num "%.0f" "evals")
  | None -> ()

let print_response ~json render = function
  | Error e -> client_fail e
  | Ok j ->
      if json then print_endline (Json.to_string j) else render j;
      0

let with_auth token_file f =
  match auth_of_file token_file with Error e -> client_fail e | Ok auth -> f auth

let submit_cmd =
  let priority_arg =
    Arg.(
      value
      & opt int 0
      & info [ "priority" ] ~docv:"N" ~doc:"Higher runs first among queued jobs (default 0)")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Latency bound from submission (queue wait counts); an overrunning job is cut \
             with cut_reason \"deadline\"")
  in
  let events_arg =
    Arg.(
      value
      & flag
      & info [ "events" ]
          ~doc:"Keep the job's recent stage-level telemetry in its result record")
  in
  let wait_flag = Arg.(value & flag & info [ "wait" ] ~doc:"Block until the job finishes") in
  let problem_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROBLEM" ~doc:"Built-in benchmark name or problem file")
  in
  let run socket token_file name seed moves runs priority deadline events wait json =
    match problem_source name with
    | Error e ->
        prerr_endline e;
        1
    | Ok src ->
        with_auth token_file (fun auth ->
            let spec =
              {
                Serve.Proto.sb_name = name;
                sb_source = src;
                sb_seed = seed;
                sb_moves = moves;
                sb_runs = runs;
                sb_priority = priority;
                sb_deadline_s = deadline;
                sb_trace = events;
                sb_shard = None;
                sb_sweep = [];
                sb_warm = [];
                sb_spec_overrides = [];
              }
            in
            match Serve.Client.submit ~socket ?auth spec with
            | Error e -> client_fail e
            | Ok id ->
                if not wait then begin
                  if json then
                    print_endline
                      (Json.to_string (Json.Obj [ ("id", Json.Num (float_of_int id)) ]))
                  else Printf.printf "job %d queued\n" id;
                  0
                end
                else print_response ~json print_job (Serve.Client.wait ~socket ?auth id))
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Queue a synthesis job on a running oblxd daemon")
    Term.(
      const run $ socket_arg $ auth_token_file_arg $ problem_arg $ seed_arg $ moves_arg
      $ runs_arg $ priority_arg $ deadline_arg $ events_arg $ wait_flag $ json_arg)

(* ------------------------------------------------------------------ *)
(* Sweep: one netlist, a grid of corner/spec variants                  *)
(* ------------------------------------------------------------------ *)

let problem_arg_sweep =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROBLEM" ~doc:"Built-in benchmark name or problem file")

(* The per-variant verdict table a finished sweep job carries. The
   compile counters are recomputed from the rows themselves (misses =
   distinct (canon, corner) keys compiled, hits = variants served from
   cache), so the report is the same whether the sweep ran in-process or
   on a remote daemon. *)
let print_sweep job =
  (match Json.mem_opt "sweep" job with
  | Some (Json.Arr rows) ->
      Printf.printf "%-28s %-14s %-6s %12s %-4s %s\n" "variant" "corner" "cache"
        "best-cost" "ok" "note";
      let hits = ref 0 and misses = ref 0 in
      List.iter
        (fun r ->
          let s k = match Json.mem_opt k r with Some (Json.Str s) -> s | _ -> "-" in
          (match Json.mem_opt "cache" r with
          | Some (Json.Str "hit") -> incr hits
          | Some (Json.Str "miss") -> incr misses
          | _ -> ());
          let corner =
            match Json.mem_opt "corner" r with
            | Some (Json.Str c) -> c
            | _ -> "nominal"
          in
          let cost =
            match Json.mem_opt "best_cost" r with
            | Some (Json.Num v) -> Printf.sprintf "%.4g" v
            | _ -> "-"
          in
          let ok =
            match Json.mem_opt "ok" r with
            | Some (Json.Bool true) -> "yes"
            | Some (Json.Bool false) -> "no"
            | _ -> "-"
          in
          let note =
            match Json.mem_opt "error" r with
            | Some (Json.Str e) -> e
            | _ -> (
                match Json.mem_opt "cut_reason" r with
                | Some (Json.Str c) -> "cut: " ^ c
                | _ -> "")
          in
          Printf.printf "%-28s %-14s %-6s %12s %-4s %s\n" (s "variant") corner
            (s "cache") cost ok note)
        rows;
      Printf.printf "compiles: %d for %d variants (%d cache hits)\n" !misses
        (List.length rows) !hits
  | _ -> print_endline "no sweep table on the job record");
  match jstr job "error" with Some e -> Printf.printf "error: %s\n" e | None -> ()

let sweep_cmd =
  let corners_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corners" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated device corners from the standard table (\"nominal\" = no \
             skew); each corner compiles once, shared by all its spec variants. Default: \
             nominal only")
  in
  let vary_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "vary" ] ~docv:"SPEC:GOOD:BAD"
          ~doc:
            "Add a spec variant overriding one specification's good/bad targets \
             (repeatable); applied per corner without recompiling")
  in
  let socket_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"ENDPOINT"
          ~doc:"Run the sweep on a running oblxd daemon instead of in-process")
  in
  let parse_vary s =
    (* Targets take spice suffixes (80meg, 0.5m) like every other number
       in the language. *)
    match String.split_on_char ':' s with
    | [ name; good; bad ] -> begin
        match (Netlist.Units.parse good, Netlist.Units.parse bad) with
        | Ok g, Ok b when name <> "" -> Ok (name, g, b)
        | _ -> Error (Printf.sprintf "bad --vary %S: expected SPEC:GOOD:BAD" s)
      end
    | _ -> Error (Printf.sprintf "bad --vary %S: expected SPEC:GOOD:BAD" s)
  in
  let build_variants corners varies =
    let corner_list =
      match corners with
      | None -> [ None ]
      | Some s ->
          String.split_on_char ',' s
          |> List.map String.trim
          |> List.filter (fun c -> c <> "")
          |> List.map (fun c -> if c = "nominal" then None else Some c)
    in
    let specsets =
      ("base", [])
      :: List.map
           (fun (n, g, b) -> (Printf.sprintf "%s=%g:%g" n g b, [ (n, g, b) ]))
           varies
    in
    List.concat_map
      (fun c ->
        List.map
          (fun (sn, ov) ->
            {
              Serve.Proto.vr_name =
                (match c with None -> sn | Some cn -> cn ^ "/" ^ sn);
              vr_corner = c;
              vr_specs = ov;
            })
          specsets)
      corner_list
  in
  let run socket token_file name seed moves runs corners varies json =
    match problem_source name with
    | Error e ->
        prerr_endline e;
        1
    | Ok src -> begin
        let varies =
          List.fold_left
            (fun acc s ->
              match (acc, parse_vary s) with
              | Error e, _ -> Error e
              | Ok vs, Ok v -> Ok (vs @ [ v ])
              | Ok _, Error e -> Error e)
            (Ok []) varies
        in
        match varies with
        | Error e ->
            prerr_endline ("astrx: " ^ e);
            1
        | Ok varies -> begin
            let bad_corner =
              match corners with
              | None -> None
              | Some s ->
                  String.split_on_char ',' s
                  |> List.map String.trim
                  |> List.find_opt (fun c ->
                         c <> "" && c <> "nominal"
                         && Option.is_none (Devices.Registry.find_corner c))
            in
            match bad_corner with
            | Some c ->
                prerr_endline
                  (Printf.sprintf "astrx: unknown corner %S (astrx sweep uses the standard \
                                   corner table)" c);
                1
            | None -> begin
                let spec =
                  {
                    Serve.Proto.sb_name = name;
                    sb_source = src;
                    sb_seed = seed;
                    sb_moves = moves;
                    sb_runs = runs;
                    sb_priority = 0;
                    sb_deadline_s = None;
                    sb_trace = false;
                    sb_shard = None;
                    sb_sweep = build_variants corners varies;
                    sb_warm = [];
                    sb_spec_overrides = [];
                  }
                in
                match socket with
                | Some socket ->
                    with_auth token_file (fun auth ->
                        match Serve.Client.sweep ~socket ?auth spec with
                        | Error e -> client_fail e
                        | Ok id ->
                            print_response ~json print_sweep
                              (Serve.Client.wait ~socket ?auth id))
                | None ->
                    (* In-process: a private single-worker pool, so the CLI
                       and the daemon execute the identical sweep path —
                       same cache keying, same verdict table. *)
                    let pool =
                      Serve.Pool.create
                        { Serve.Pool.default_config with Serve.Pool.workers = 1 }
                    in
                    Fun.protect
                      ~finally:(fun () -> Serve.Pool.shutdown pool)
                      (fun () ->
                        match Serve.Pool.submit pool spec with
                        | Error e -> client_fail e
                        | Ok id ->
                            let rec wait () =
                              match Serve.Pool.status_json pool id with
                              | Error e -> client_fail e
                              | Ok j -> begin
                                  match Json.mem_opt "state" j with
                                  | Some (Json.Str ("queued" | "running")) ->
                                      Unix.sleepf 0.02;
                                      wait ()
                                  | _ ->
                                      print_response ~json print_sweep
                                        (Serve.Pool.result_json pool id)
                                end
                            in
                            wait ())
              end
          end
      end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Synthesize one problem across a grid of corner/spec variants, compiling once \
          per distinct (canon, corner) key")
    Term.(
      const run $ socket_opt_arg $ auth_token_file_arg $ problem_arg_sweep $ seed_arg
      $ moves_arg $ runs_arg $ corners_arg $ vary_arg $ json_arg)

let status_cmd =
  let run socket token_file id json =
    with_auth token_file (fun auth ->
        print_response ~json print_job (Serve.Client.status ~socket ?auth id))
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Show a daemon job's state and queue position")
    Term.(const run $ socket_arg $ auth_token_file_arg $ id_arg $ json_arg)

let result_cmd =
  let run socket token_file id json =
    with_auth token_file (fun auth ->
        print_response ~json print_job (Serve.Client.result ~socket ?auth id))
  in
  Cmd.v
    (Cmd.info "result" ~doc:"Fetch a daemon job's full result record")
    Term.(const run $ socket_arg $ auth_token_file_arg $ id_arg $ json_arg)

let cancel_cmd =
  let run socket token_file id =
    with_auth token_file (fun auth ->
        match Serve.Client.cancel ~socket ?auth id with
        | Error e -> client_fail e
        | Ok () ->
            Printf.printf "job %d cancelled\n" id;
            0)
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel a queued or running daemon job")
    Term.(const run $ socket_arg $ auth_token_file_arg $ id_arg)

let resynthesize_cmd =
  let set_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "set" ] ~docv:"SPEC=GOOD[:BAD]"
          ~doc:
            "Re-target one specification (repeatable). Values take spice suffixes \
             (80meg, 0.5m); with BAD omitted the parent job's bad target is kept")
  in
  let runs_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "runs" ] ~docv:"N"
          ~doc:"Restart budget (default: half the parent's, minimum 1)")
  in
  let moves_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "moves" ] ~docv:"N"
          ~doc:"Move budget per restart (default: half the parent's explicit budget)")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Latency bound from submission")
  in
  let events_arg =
    Arg.(
      value
      & flag
      & info [ "events" ]
          ~doc:"Keep the job's recent stage-level telemetry in its result record")
  in
  let wait_flag = Arg.(value & flag & info [ "wait" ] ~doc:"Block until the job finishes") in
  let parse_set s =
    let bad_set = Error (Printf.sprintf "bad --set %S: expected SPEC=GOOD[:BAD]" s) in
    match String.index_opt s '=' with
    | None -> bad_set
    | Some i -> begin
        let name = String.sub s 0 i in
        let targets = String.sub s (i + 1) (String.length s - i - 1) in
        if name = "" then bad_set
        else
          match String.split_on_char ':' targets with
          | [ good ] -> begin
              match Netlist.Units.parse good with
              | Ok g -> Ok (name, g, None)
              | Error _ -> bad_set
            end
          | [ good; bad ] -> begin
              match (Netlist.Units.parse good, Netlist.Units.parse bad) with
              | Ok g, Ok b -> Ok (name, g, Some b)
              | _ -> bad_set
            end
          | _ -> bad_set
      end
  in
  let run socket token_file id sets runs moves deadline events wait json =
    let sets =
      List.fold_left
        (fun acc s ->
          match (acc, parse_set s) with
          | (Error _ as e), _ | _, (Error _ as e) -> e
          | Ok vs, Ok v -> Ok (vs @ [ v ]))
        (Ok []) sets
    in
    match sets with
    | Error e ->
        prerr_endline ("astrx: " ^ e);
        1
    | Ok specs ->
        with_auth token_file (fun auth ->
            let r =
              {
                Serve.Proto.rz_id = id;
                rz_specs = specs;
                rz_runs = runs;
                rz_moves = moves;
                rz_deadline_s = deadline;
                rz_trace = events;
              }
            in
            match Serve.Client.resynthesize ~socket ?auth r with
            | Error e -> client_fail e
            | Ok new_id ->
                if not wait then begin
                  if json then
                    print_endline
                      (Json.to_string (Json.Obj [ ("id", Json.Num (float_of_int new_id)) ]))
                  else Printf.printf "job %d queued (warm rerun of job %d)\n" new_id id;
                  0
                end
                else print_response ~json print_job (Serve.Client.wait ~socket ?auth new_id))
  in
  Cmd.v
    (Cmd.info "resynthesize"
       ~doc:
         "Rerun a finished daemon job with tweaked spec targets: cached compile, \
          warm-started from its recorded winner, on a reduced schedule")
    Term.(
      const run $ socket_arg $ auth_token_file_arg $ id_arg $ set_arg $ runs_opt_arg
      $ moves_opt_arg $ deadline_arg $ events_arg $ wait_flag $ json_arg)

let corpus_cmd =
  let shape_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SHAPE" ~doc:"Shape hash (from $(b,astrx hash))")
  in
  let run socket token_file shape json =
    with_auth token_file (fun auth ->
        match Serve.Client.corpus_lookup ~socket ?auth shape with
        | Error e -> client_fail e
        | Ok entries ->
            if json then
              print_endline
                (Json.to_string (Json.Arr (List.map Serve.Corpus.entry_to_json entries)))
            else begin
              List.iter
                (fun e ->
                  Printf.printf "job %d (%s): cost %.6g, %d variable%s%s\n"
                    e.Serve.Corpus.en_job e.Serve.Corpus.en_name e.Serve.Corpus.en_cost
                    (Array.length e.Serve.Corpus.en_values)
                    (if Array.length e.Serve.Corpus.en_values = 1 then "" else "s")
                    (if e.Serve.Corpus.en_probs = [||] then "" else ", with move priors"))
                entries;
              Printf.printf "%d corpus entr%s for shape %s\n" (List.length entries)
                (if List.length entries = 1 then "y" else "ies")
                shape
            end;
            0)
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List a daemon's winner-corpus entries for a circuit shape")
    Term.(const run $ socket_arg $ auth_token_file_arg $ shape_arg $ json_arg)

let hash_cmd =
  let problem_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROBLEM" ~doc:"Built-in benchmark name or problem file")
  in
  let run name json =
    match problem_source name with
    | Error e ->
        prerr_endline e;
        1
    | Ok src -> begin
        match Netlist.Parser.parse_problem src with
        | exception Netlist.Parser.Error (line, msg) ->
            Printf.eprintf "astrx: %s: line %d: %s\n" name line msg;
            1
        | ast ->
            let canon = Netlist.Canon.problem_hash ast in
            let shape = Netlist.Canon.problem_shape_hash ast in
            if json then
              print_endline
                (Json.to_string
                   (Json.Obj [ ("canon", Json.Str canon); ("shape", Json.Str shape) ]))
            else Printf.printf "canon %s\nshape %s\n" canon shape;
            0
      end
  in
  Cmd.v
    (Cmd.info "hash"
       ~doc:
         "Print a problem's canonical hash (the compile-cache key) and its shape hash \
          (the winner-corpus key, spec targets canonicalized away)")
    Term.(const run $ problem_arg $ json_arg)

let stats_cmd =
  let run socket token_file json =
    let render j =
      let sub k = match Json.mem_opt k j with Some o -> o | None -> Json.Obj [] in
      let jobs = sub "jobs" and cache = sub "cache" in
      let n o k = match jnum o k with Some v -> Printf.sprintf "%.0f" v | None -> "-" in
      Printf.printf "uptime %s s, %s worker(s), queue %s/%s\n" (n j "uptime_s")
        (n j "workers") (n j "queue_depth") (n j "queue_capacity");
      Printf.printf "jobs: %s total (%s queued, %s running, %s done, %s failed, %s \
                     cancelled, %s rejected)\n"
        (n jobs "total") (n jobs "queued") (n jobs "running") (n jobs "done")
        (n jobs "failed") (n jobs "cancelled") (n jobs "rejected");
      (match jnum j "restored_jobs" with
      | Some r when r > 0.0 -> Printf.printf "  %.0f restored from the job log at startup\n" r
      | Some _ | None -> ());
      (match Json.mem_opt "connections" j with
      | Some conns ->
          Printf.printf "connections: %s active (max %s), %s accepted, %s rejected\n"
            (n conns "active") (n conns "max") (n conns "total") (n conns "rejected")
      | None -> ());
      Printf.printf "cache: %s hit / %s miss (%s entries, %s evictions)%s\n" (n cache "hits")
        (n cache "misses") (n cache "entries") (n cache "evictions")
        (match jnum cache "hit_rate" with
        | Some r -> Printf.sprintf ", hit rate %.0f%%" (100.0 *. r)
        | None -> "");
      (match Json.mem_opt "fleet" j with
      | Some (Json.Obj _ as f) ->
          let peers =
            match Json.mem_opt "peers" f with
            | Some (Json.Arr ps) -> string_of_int (List.length ps)
            | _ -> "-"
          in
          Printf.printf
            "fleet: %s peer(s); cache %s remote hit / %s lookup RPCs, %s push (%s failed); \
             %s scatter(s), %s remote shard(s), %s steal(s)\n"
            peers (n f "remote_hits") (n f "remote_lookups") (n f "pushes")
            (n f "push_failures") (n f "scatters") (n f "remote_shards") (n f "steals")
      | Some _ | None -> ());
      (match (Json.mem_opt "eval_mode" j, Json.mem_opt "evals" j) with
      | Some (Json.Str mode), Some (Json.Obj _ as ev) ->
          let pct a b =
            match (jnum ev a, jnum ev b) with
            | Some x, Some y when x +. y > 0.0 -> Printf.sprintf "%.0f%%" (100.0 *. x /. (x +. y))
            | _ -> "-"
          in
          Printf.printf
            "evals (%s): %s incremental / %s full; op cache %s hit, ROM reuse %s, spec reuse \
             %s, %s resyncs (%s mismatches)\n"
            mode (n ev "incremental") (n ev "full") (pct "op_hits" "op_misses")
            (pct "rom_reuses" "rom_builds") (pct "spec_reuses" "spec_evals") (n ev "resyncs")
            (n ev "resync_mismatches");
          (match jnum ev "probes" with
          | Some p when p > 0.0 ->
              Printf.printf
                "probe: %s screens, %s jig refits (%s fresh fallbacks); moments %s reused, %s \
                 refreshed\n"
                (n ev "probes") (n ev "probe_rom_builds") (n ev "probe_fallbacks")
                (n ev "mom_reuses") (n ev "mom_refreshes")
          | Some _ | None -> ())
      | Some (Json.Str mode), _ -> Printf.printf "evals: mode %s\n" mode
      | _ -> ());
      match Json.mem_opt "workers_detail" j with
      | Some (Json.Arr ws) ->
          List.iter
            (fun w ->
              Printf.printf "  worker %s: %s job(s), %s moves%s\n" (n w "worker") (n w "jobs")
                (n w "moves")
                (match jnum w "moves_per_s" with
                | Some r -> Printf.sprintf " (%.0f moves/s)" r
                | None -> ""))
            ws
      | Some _ | None -> ()
    in
    with_auth token_file (fun auth ->
        print_response ~json render (Serve.Client.stats ~socket ?auth ()))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show daemon queue, cache, and worker statistics")
    Term.(const run $ socket_arg $ auth_token_file_arg $ json_arg)

let shutdown_cmd =
  let run socket token_file =
    with_auth token_file (fun auth ->
        match Serve.Client.shutdown ~socket ?auth () with
        | Error e -> client_fail e
        | Ok () ->
            print_endline "daemon shutting down";
            0)
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to drain and exit")
    Term.(const run $ socket_arg $ auth_token_file_arg)

let () =
  let doc = "ASTRX/OBLX analog circuit synthesis" in
  let info = Cmd.info "astrx" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            compile_cmd;
            synth_cmd;
            bench_cmd;
            replay_cmd;
            corners_cmd;
            sens_cmd;
            list_cmd;
            hash_cmd;
            submit_cmd;
            sweep_cmd;
            resynthesize_cmd;
            status_cmd;
            result_cmd;
            cancel_cmd;
            corpus_cmd;
            stats_cmd;
            shutdown_cmd;
          ]))
