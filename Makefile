# Convenience targets; dune is the real build system.

.PHONY: all build test bench bench-quick clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every paper table/figure (~15 min).
bench:
	dune exec bench/main.exe

# Small-budget multi-start scaling measurement; writes
# bench/results/perf-parallel-latest.json (used by CI as an artifact).
bench-quick:
	dune exec bench/main.exe -- perf-parallel --moves 2000 --runs 4

clean:
	dune clean
