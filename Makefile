# Convenience targets; dune is the real build system.

.PHONY: all build test bench bench-quick bench-perf-check bench-perf-incremental bench-serve bench-serve-concurrent bench-serve-fleet bench-sweep bench-warm-start bench-compare trace-replay serve-smoke fleet-smoke clean

# One UTC stamp per make invocation; every bench target passes it down so
# each artifact lands both at <name>-latest.json and as an immutable
# <name>-$(RUNSTAMP).json copy (diffed by scripts/bench_compare.sh).
RUNSTAMP ?= $(shell date -u +%Y%m%dT%H%M%SZ)

all: build

build:
	dune build @all

test:
	dune runtest

# Every paper table/figure (~15 min).
bench:
	dune exec bench/main.exe -- --runstamp $(RUNSTAMP)

# Small-budget multi-start scaling measurement; writes
# bench/results/perf-parallel-latest.json (used by CI as an artifact).
bench-quick:
	dune exec bench/main.exe -- perf-parallel --moves 2000 --runs 4 --runstamp $(RUNSTAMP)

# bench-quick plus the regression gate: exits non-zero when the jobs=4
# speedup drops below the floor, scaled for the host's core count
# (docs/PARALLEL.md, "reading perf-parallel JSON"). CI runs this against
# the committed bench/results/perf-parallel-latest.json.
PERF_FLOOR ?= 2.0
bench-perf-check:
	dune exec bench/main.exe -- perf-parallel --moves 2000 --runs 4 --floor $(PERF_FLOOR) --runstamp $(RUNSTAMP)

# Move-scoped incremental evaluation vs full recompute (docs/PERFORMANCE.md);
# writes bench/results/perf-incremental-latest.json with per-circuit
# speedups, cache counters and the bit-identity checks — including the
# batched probe-then-confirm tournaments. PERF_INCR_FLOOR gates the best
# probed-vs-full throughput gain; unlike PERF_FLOOR it needs no core-count
# scaling (the win is algorithmic, not parallelism).
PERF_INCR_FLOOR ?= 2.5
bench-perf-incremental:
	dune exec bench/main.exe -- perf-incremental --moves 4000 --floor $(PERF_INCR_FLOOR) --runstamp $(RUNSTAMP)

# Record simple-ota traces sequentially and domain-parallel, then replay
# both against the compiled cost function (docs/OBSERVABILITY.md) — the
# telemetry side of the --jobs determinism guarantee.
trace-replay:
	mkdir -p bench/results
	dune exec bin/astrx.exe -- bench simple-ota --no-verify --moves 2000 --runs 4 --jobs 1 \
		--trace bench/results/trace-jobs1.jsonl
	dune exec bin/astrx.exe -- replay simple-ota bench/results/trace-jobs1.jsonl
	dune exec bin/astrx.exe -- bench simple-ota --no-verify --moves 2000 --runs 4 --jobs 4 \
		--trace bench/results/trace-jobs4.jsonl
	dune exec bin/astrx.exe -- replay simple-ota bench/results/trace-jobs4.jsonl

# Small-budget run of the oblxd job-service bench (docs/SERVER.md); writes
# bench/results/serve-latest.json with throughput, queue-wait percentiles,
# cache hit rate, and the deadline/determinism checks.
bench-serve:
	dune exec bench/main.exe -- serve --moves 300 --runstamp $(RUNSTAMP)

# The daemon under simultaneous clients: stats latency with idle
# connections held, over-cap rejection, and parallel submit/wait
# throughput; writes bench/results/serve-concurrent-latest.json.
bench-serve-concurrent:
	dune exec bench/main.exe -- serve-concurrent --moves 300 --runstamp $(RUNSTAMP)

# Three in-process daemons over loopback TCP: scatter/steal/merge
# determinism vs one box, steal-recovery latency, hundreds of concurrent
# clients, and the replicated compile cache's remote hit rate; writes
# bench/results/serve-fleet-latest.json.
bench-serve-fleet:
	dune exec bench/main.exe -- serve-fleet --moves 300 --runstamp $(RUNSTAMP)

# One netlist swept over a corners x spec-overrides grid through the
# pool's sweep verb: gates exactly one compile per distinct
# (canon, corner) key via the cache counters, and byte-identical verdict
# tables on 1-worker vs 4-worker pools; writes
# bench/results/sweep-latest.json.
bench-sweep:
	dune exec bench/main.exe -- sweep --moves 200 --runstamp $(RUNSTAMP)

# The resynthesize scenario measured end to end: a cold run vs one seeded
# from the parent winner (values + learned Hustin distribution) on a
# spec-retargeted problem, scored by moves-to-target, plus the warm-off
# bit-identity guard; writes bench/results/warm-start-latest.json.
# WARM_FLOOR gates the best cold/warm ratio — like PERF_INCR_FLOOR it
# needs no core-count scaling (the win is sample efficiency).
WARM_FLOOR ?= 1.5
bench-warm-start:
	dune exec bench/main.exe -- warm-start --floor $(WARM_FLOOR) --runstamp $(RUNSTAMP)

# Diff the working tree's <name>-latest.json artifacts against the
# committed baselines (git show HEAD:...), printing per-metric deltas.
bench-compare:
	bash scripts/bench_compare.sh

# Boot the daemon, exercise submit/cache-hit/cancel/shutdown over the
# socket (scripts/serve_smoke.sh; the CI serve-smoke job).
serve-smoke:
	bash scripts/serve_smoke.sh

# Three real oblxd daemons on authenticated loopback TCP: coordinator
# scatter, peer kill -9 mid-job, bit-identity vs a standalone daemon
# (scripts/fleet_smoke.sh; runs in CI next to serve-smoke).
fleet-smoke:
	bash scripts/fleet_smoke.sh

clean:
	dune clean
	rm -f oblxd.sock
	rm -rf oblxd-state
